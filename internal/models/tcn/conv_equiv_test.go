package tcn

import (
	"math/rand"
	"testing"
)

// naiveConvForward is the seed implementation — the per-sample
// bounds-checked triple loop — kept as the reference the optimized kernel
// must match bitwise (identical accumulation order).
func naiveConvForward(l *Conv1D, x *Tensor) *Tensor {
	_, outT := l.OutShape(x.C, x.T)
	y := NewTensor(l.OutC, outT)
	padL := l.padLeft()
	K, D, S := l.Kernel, l.Dilation, l.Stride
	for o := 0; o < l.OutC; o++ {
		yRow := y.Row(o)
		bias := l.Bias.W[o]
		for t := range yRow {
			yRow[t] = bias
		}
		for ci := 0; ci < l.InC; ci++ {
			xRow := x.Row(ci)
			wBase := (o*l.InC + ci) * K
			for k := 0; k < K; k++ {
				w := l.Weight.W[wBase+k]
				if w == 0 {
					continue
				}
				off := k*D - padL
				for t := 0; t < outT; t++ {
					src := t*S + off
					if src >= 0 && src < x.T {
						yRow[t] += w * xRow[src]
					}
				}
			}
		}
	}
	return y
}

// naiveConvBackward mirrors the seed backward pass, accumulating into the
// provided gradient buffers.
func naiveConvBackward(l *Conv1D, x, grad *Tensor, wG, bG []float32) *Tensor {
	gx := NewTensor(x.C, x.T)
	padL := l.padLeft()
	K, D, S := l.Kernel, l.Dilation, l.Stride
	for o := 0; o < l.OutC; o++ {
		gRow := grad.Row(o)
		var gb float32
		for _, g := range gRow {
			gb += g
		}
		bG[o] += gb
		for ci := 0; ci < l.InC; ci++ {
			xRow := x.Row(ci)
			gxRow := gx.Row(ci)
			wBase := (o*l.InC + ci) * K
			for k := 0; k < K; k++ {
				off := k*D - padL
				var gw float32
				w := l.Weight.W[wBase+k]
				for t, g := range gRow {
					src := t*S + off
					if src >= 0 && src < x.T {
						gw += g * xRow[src]
						gxRow[src] += g * w
					}
				}
				wG[wBase+k] += gw
			}
		}
	}
	return gx
}

func randomConv(rng *rand.Rand, inC, outC, kernel, dilation, stride int) *Conv1D {
	l := NewConv1D("t.conv", inC, outC, kernel, dilation, stride)
	for i := range l.Weight.W {
		l.Weight.W[i] = float32(rng.NormFloat64())
	}
	// Leave a few exact zeros so the sparsity skip is exercised.
	l.Weight.W[0] = 0
	for i := range l.Bias.W {
		l.Bias.W[i] = float32(rng.NormFloat64())
	}
	return l
}

func randomTensor(rng *rand.Rand, c, t int) *Tensor {
	x := NewTensor(c, t)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestConv1DForwardMatchesNaive sweeps odd/even kernels, dilations and
// strides 1–2 over several lengths; the branch-free kernel must match the
// naive loop exactly (it performs the same additions in the same order).
func TestConv1DForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, kernel := range []int{1, 2, 3, 4, 5, 8} {
		for _, dil := range []int{1, 2, 4} {
			for _, stride := range []int{1, 2} {
				// Degenerate lengths (1, 2) where padding exceeds the
				// signal are included deliberately: taps whose offset
				// falls entirely past the input must contribute nothing.
				for _, inT := range []int{1, 2, 5, 16, 31, 64} {
					l := randomConv(rng, 3, 2, kernel, dil, stride)
					x := randomTensor(rng, 3, inT)
					got := l.Forward(x)
					want := naiveConvForward(l, x)
					if got.C != want.C || got.T != want.T {
						t.Fatalf("k%d d%d s%d T%d: shape %dx%d, want %dx%d",
							kernel, dil, stride, inT, got.C, got.T, want.C, want.T)
					}
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("k%d d%d s%d T%d: elem %d = %v, want %v (must be bitwise equal)",
								kernel, dil, stride, inT, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

func TestConv1DBackwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, kernel := range []int{1, 2, 3, 5} {
		for _, dil := range []int{1, 2, 4} {
			for _, stride := range []int{1, 2} {
				for _, inT := range []int{1, 2, 33} {
					l := randomConv(rng, 2, 3, kernel, dil, stride)
					x := randomTensor(rng, 2, inT)
					y := l.Forward(x)
					grad := randomTensor(rng, y.C, y.T)

					wantWG := make([]float32, len(l.Weight.G))
					wantBG := make([]float32, len(l.Bias.G))
					wantGX := naiveConvBackward(l, x, grad, wantWG, wantBG)

					l.Weight.ZeroGrad()
					l.Bias.ZeroGrad()
					gx := l.Backward(grad)
					for i := range wantGX.Data {
						if gx.Data[i] != wantGX.Data[i] {
							t.Fatalf("k%d d%d s%d: gx[%d] = %v, want %v", kernel, dil, stride, i, gx.Data[i], wantGX.Data[i])
						}
					}
					for i := range wantWG {
						if l.Weight.G[i] != wantWG[i] {
							t.Fatalf("k%d d%d s%d: wG[%d] = %v, want %v", kernel, dil, stride, i, l.Weight.G[i], wantWG[i])
						}
					}
					for i := range wantBG {
						if l.Bias.G[i] != wantBG[i] {
							t.Fatalf("k%d d%d s%d: bG[%d] = %v, want %v", kernel, dil, stride, i, l.Bias.G[i], wantBG[i])
						}
					}
				}
			}
		}
	}
}

func TestConv1DForwardZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := randomConv(rng, 4, 8, 3, 2, 1)
	x := randomTensor(rng, 4, 256)
	l.Forward(x) // warm the output slot
	if n := testing.AllocsPerRun(50, func() { l.Forward(x) }); n != 0 {
		t.Errorf("Conv1D.Forward allocates %v per run in steady state", n)
	}
}

func TestNetworkForwardBackwardZeroAllocSteadyState(t *testing.T) {
	net := NewTimePPGSmall()
	net.InitWeights(3)
	x := randomTensor(rand.New(rand.NewSource(24)), InputChannels, InputSamples)
	net.Forward(x)
	net.Backward(1)
	if n := testing.AllocsPerRun(20, func() { net.Forward(x) }); n != 0 {
		t.Errorf("Network.Forward allocates %v per run in steady state", n)
	}
	if n := testing.AllocsPerRun(20, func() { net.Backward(0.5) }); n != 0 {
		t.Errorf("Network.Backward allocates %v per run in steady state", n)
	}
}

// TestLayerOutputReuseIsSafeAcrossSamples guards the arena semantics: a
// second forward on different data must not corrupt results that depend on
// the first (each call fully overwrites the reused buffers).
func TestLayerOutputReuseIsSafeAcrossSamples(t *testing.T) {
	net := NewTimePPGSmall()
	net.InitWeights(5)
	rng := rand.New(rand.NewSource(25))
	x1 := randomTensor(rng, InputChannels, InputSamples)
	x2 := randomTensor(rng, InputChannels, InputSamples)
	first := net.Forward(x1)
	net.Forward(x2)
	again := net.Forward(x1)
	if first != again {
		t.Fatalf("first=%v again=%v: reused buffers must reproduce identical outputs", first, again)
	}
}

func BenchmarkConv1DForward(b *testing.B) {
	// Representative TimePPG-Big mid-block layer: 48→48, k=3, d=4, T=128.
	rng := rand.New(rand.NewSource(31))
	l := randomConv(rng, 48, 48, 3, 4, 1)
	x := randomTensor(rng, 48, 128)
	l.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x)
	}
}

func BenchmarkConv1DForwardSeed(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	l := randomConv(rng, 48, 48, 3, 4, 1)
	x := randomTensor(rng, 48, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveConvForward(l, x)
	}
}

func BenchmarkNetworkForwardSmall(b *testing.B) {
	net := NewTimePPGSmall()
	net.InitWeights(1)
	x := randomTensor(rand.New(rand.NewSource(32)), InputChannels, InputSamples)
	net.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkNetworkForwardBig(b *testing.B) {
	net := NewTimePPGBig()
	net.InitWeights(1)
	x := randomTensor(rand.New(rand.NewSource(33)), InputChannels, InputSamples)
	net.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
