package tcn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Network is an ordered stack of layers with a scalar regression head.
//
// Layers reuse their output and gradient tensors between calls (a
// layer-local scratch arena), so after warm-up a forward or backward pass
// performs zero heap allocations — and a network instance must not be
// shared between goroutines; use CloneForWorker for data-parallel work.
type Network struct {
	Topology string // e.g. "TimePPG-Small"
	InC, InT int
	Layers   []Layer

	outGrad  *Tensor      // reused seed tensor for Backward
	outGradB *BatchTensor // reused seed tensor for BackwardBatch
}

// Forward runs the network on one input tensor and returns the scalar
// output (the normalized HR).
func (n *Network) Forward(x *Tensor) float32 {
	cur := x
	for _, l := range n.Layers {
		cur = l.Forward(cur)
	}
	if cur.Numel() != 1 {
		panic(fmt.Sprintf("tcn: network %s output has %d elements, want 1", n.Topology, cur.Numel()))
	}
	return cur.Data[0]
}

// Backward propagates the scalar output gradient through the stack,
// accumulating parameter gradients. Forward must have been called first on
// the same layer instances.
func (n *Network) Backward(outGrad float32) {
	grad := ensureTensor(&n.outGrad, 1, 1)
	grad.Data[0] = outGrad
	cur := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		cur = n.Layers[i].Backward(cur)
		if cur == nil && i != 0 {
			panic(fmt.Sprintf("tcn: layer %s returned nil gradient mid-stack", n.Layers[i].Name()))
		}
	}
}

// Params returns all learnable parameters in a stable order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams counts scalar parameters.
func (n *Network) NumParams() int64 {
	var total int64
	for _, p := range n.Params() {
		total += int64(len(p.W))
	}
	return total
}

// MACs returns the multiply-accumulate count of one forward pass.
func (n *Network) MACs() int64 {
	c, t := n.InC, n.InT
	var total int64
	for _, l := range n.Layers {
		total += l.MACs(c, t)
		c, t = l.OutShape(c, t)
	}
	return total
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// CloneForWorker builds a worker copy: weights shared, gradients and
// activation caches private.
func (n *Network) CloneForWorker() *Network {
	c := &Network{Topology: n.Topology, InC: n.InC, InT: n.InT}
	for _, l := range n.Layers {
		c.Layers = append(c.Layers, l.CloneForWorker())
	}
	return c
}

// InitWeights applies He initialization to conv and dense weights using the
// given deterministic source.
func (n *Network) InitWeights(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv1D:
			fanIn := float64(v.InC * v.Kernel)
			std := math.Sqrt(2 / fanIn)
			for i := range v.Weight.W {
				v.Weight.W[i] = float32(rng.NormFloat64() * std)
			}
			for i := range v.Bias.W {
				v.Bias.W[i] = 0
			}
		case *Dense:
			fanIn := float64(v.In)
			std := math.Sqrt(2 / fanIn)
			for i := range v.Weight.W {
				v.Weight.W[i] = float32(rng.NormFloat64() * std)
			}
			for i := range v.Bias.W {
				v.Bias.W[i] = 0
			}
		}
	}
}

// Describe returns a human-readable per-layer summary (shape, params,
// MACs) used by cmd/trainppg and the documentation.
func (n *Network) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  input %d×%d\n", n.Topology, n.InC, n.InT)
	c, t := n.InC, n.InT
	var macs, params int64
	for _, l := range n.Layers {
		oc, ot := l.OutShape(c, t)
		m := l.MACs(c, t)
		var p int64
		for _, par := range l.Params() {
			p += int64(len(par.W))
		}
		fmt.Fprintf(&b, "  %-18s %4d×%-4d → %4d×%-4d  params %-7d MACs %d\n",
			l.Name(), c, t, oc, ot, p, m)
		macs += m
		params += p
		c, t = oc, ot
	}
	fmt.Fprintf(&b, "  total: params %d, MACs %d\n", params, macs)
	return b.String()
}
