package tcn

import "math"

// HuberLoss returns the Huber loss and its derivative with respect to the
// prediction, for target y and prediction p (both in normalized HR units).
// The Huber transition delta is 1.0 (≈ HRStd BPM), which keeps occasional
// impossible windows from dominating the gradient.
func HuberLoss(p, y float32) (loss, grad float32) {
	const delta = 1.0
	d := float64(p - y)
	ad := math.Abs(d)
	if ad <= delta {
		return float32(0.5 * d * d), float32(d)
	}
	sign := 1.0
	if d < 0 {
		sign = -1
	}
	return float32(delta * (ad - 0.5*delta)), float32(sign * delta)
}
