package tcn

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, c, t int) *Tensor {
	x := NewTensor(c, t)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func TestTensorBasics(t *testing.T) {
	x := NewTensor(3, 4)
	x.Set(2, 1, 5)
	if x.At(2, 1) != 5 {
		t.Error("Set/At mismatch")
	}
	if len(x.Row(2)) != 4 || x.Row(2)[1] != 5 {
		t.Error("Row view broken")
	}
	c := x.Clone()
	c.Set(0, 0, 9)
	if x.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
	x.Zero()
	if x.At(2, 1) != 0 {
		t.Error("Zero failed")
	}
}

func TestConvOutShape(t *testing.T) {
	cases := []struct {
		k, d, s  int
		inT      int
		wantOutT int
	}{
		{3, 1, 1, 256, 256},
		{3, 2, 1, 256, 256},
		{3, 4, 1, 256, 256},
		{3, 1, 2, 256, 128},
		{3, 1, 2, 255, 128},
		{5, 2, 2, 64, 32},
	}
	for _, c := range cases {
		l := NewConv1D("t", 2, 3, c.k, c.d, c.s)
		oc, ot := l.OutShape(2, c.inT)
		if oc != 3 || ot != c.wantOutT {
			t.Errorf("k%d d%d s%d inT %d: OutShape = (%d,%d), want (3,%d)",
				c.k, c.d, c.s, c.inT, oc, ot, c.wantOutT)
		}
		y := l.Forward(randTensor(rand.New(rand.NewSource(1)), 2, c.inT))
		if y.C != oc || y.T != ot {
			t.Errorf("forward shape (%d,%d) != OutShape (%d,%d)", y.C, y.T, oc, ot)
		}
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1-tap-active kernel with stride 1 must reproduce the input row.
	l := NewConv1D("t", 1, 1, 3, 1, 1)
	l.Weight.W[1] = 1 // centre tap (padL=1 → offset k=1 maps to src=t)
	x := NewTensor(1, 8)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	y := l.Forward(x)
	for i := range y.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv output[%d] = %v, want %v", i, y.Data[i], x.Data[i])
		}
	}
}

// numericalGrad estimates dLoss/dw via central differences.
func numericalGrad(f func() float64, w *float32) float64 {
	const eps = 1e-3
	orig := *w
	*w = orig + eps
	up := f()
	*w = orig - eps
	down := f()
	*w = orig
	return (up - down) / (2 * eps)
}

// TestGradientsNumerically verifies backprop for a small full stack:
// conv(d=2) → affine → relu → conv(s=2) → flatten → dense → dense(1).
func TestGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := &Network{Topology: "tiny", InC: 2, InT: 16}
	net.Layers = []Layer{
		NewConv1D("c1", 2, 3, 3, 2, 1),
		NewChannelAffine("a1", 3),
		NewReLU("r1"),
		NewConv1D("c2", 3, 3, 3, 1, 2),
		NewReLU("r2"),
		NewFlatten("f"),
		NewDense("d1", 24, 5),
		NewReLU("r3"),
		NewDense("d2", 5, 1),
	}
	net.InitWeights(3)
	// Perturb affine away from identity so its gradients are non-trivial.
	for i := range net.Layers[1].(*ChannelAffine).Gamma.W {
		net.Layers[1].(*ChannelAffine).Gamma.W[i] = 1 + 0.3*float32(rng.NormFloat64())
		net.Layers[1].(*ChannelAffine).Beta.W[i] = 0.2 * float32(rng.NormFloat64())
	}
	x := randTensor(rng, 2, 16)
	target := float32(0.7)

	loss := func() float64 {
		p := net.Forward(x)
		l, _ := HuberLoss(p, target)
		return float64(l)
	}

	// Analytic gradients.
	net.ZeroGrad()
	p := net.Forward(x)
	_, g := HuberLoss(p, target)
	net.Backward(g)

	checked := 0
	for _, par := range net.Params() {
		for i := 0; i < len(par.W); i += 1 + len(par.W)/7 { // sample a few
			want := numericalGrad(loss, &par.W[i])
			got := float64(par.G[i])
			tol := 1e-2 + 0.05*math.Abs(want)
			if math.Abs(got-want) > tol {
				t.Errorf("param %s[%d]: analytic %.5f vs numerical %.5f", par.Name, i, got, want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestTopologiesBuildAndCount(t *testing.T) {
	small := NewTimePPGSmall()
	big := NewTimePPGBig()
	sp, bp := small.NumParams(), big.NumParams()
	sm, bm := small.MACs(), big.MACs()
	t.Logf("Small: %d params, %d MACs; Big: %d params, %d MACs", sp, sm, bp, bm)
	// Paper targets: Small 5.09k params / 77.6k ops; Big 232.6k / 12.27M.
	if sp < 3000 || sp > 8000 {
		t.Errorf("Small params %d far from paper's 5.09k", sp)
	}
	if bp < 150_000 || bp > 350_000 {
		t.Errorf("Big params %d far from paper's 232.6k", bp)
	}
	if sm < 30_000 || sm > 160_000 {
		t.Errorf("Small MACs %d far from paper's 77.6k ops", sm)
	}
	if bm < 2_500_000 || bm > 25_000_000 {
		t.Errorf("Big MACs %d far from paper's 12.27M ops", bm)
	}
	// Ratio sanity: Big must cost 1-2 orders of magnitude more than Small.
	if bm < 20*sm {
		t.Errorf("Big/Small MAC ratio %0.f too small", float64(bm)/float64(sm))
	}
	// Forward shape sanity.
	x := randTensor(rand.New(rand.NewSource(2)), InputChannels, InputSamples)
	_ = small.Forward(x)
	_ = big.Forward(x.Clone())
}

func TestNormalizationRoundTrip(t *testing.T) {
	for _, hr := range []float64{40, 75, 120, 200} {
		if got := DenormalizeHR(NormalizeHR(hr)); math.Abs(got-hr) > 1e-3 {
			t.Errorf("normalize round trip %v -> %v", hr, got)
		}
	}
}

// TestFitLearnsSyntheticRule trains a tiny network to recover a linear
// function of the input mean — convergence proves the trainer wiring.
func TestFitLearnsSyntheticRule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := freqCodedSamples(rng, 256)
	net := NewTimePPGSmall()
	net.InitWeights(7)
	before := Evaluate(net, train)
	cfg := DefaultTrainConfig()
	cfg.Workers = 4
	loss, err := Fit(net, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(net, train)
	t.Logf("train MAE before %.2f after %.2f (loss %.4f)", before, after, loss)
	if after >= before*0.6 {
		t.Errorf("training did not reduce MAE: before %.2f, after %.2f", before, after)
	}
}

func TestFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var train []Sample
	for i := 0; i < 64; i++ {
		train = append(train, Sample{X: randTensor(rng, InputChannels, InputSamples), HR: 60 + rng.Float64()*80})
	}
	run := func(workers int) []float32 {
		net := NewTimePPGSmall()
		net.InitWeights(1)
		cfg := TrainConfig{Epochs: 2, BatchSize: 16, LR: 1e-3, Seed: 3, Workers: workers, LRDecay: 1}
		if _, err := Fit(net, train, cfg); err != nil {
			t.Fatal(err)
		}
		var out []float32
		for _, p := range net.Params() {
			out = append(out, p.W...)
		}
		return out
	}
	// Same worker count ⇒ bitwise identical weights regardless of
	// goroutine scheduling.
	a := run(4)
	b := run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("4-worker runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Different worker counts only change FP summation order: weights must
	// agree to float32 round-off, not necessarily bitwise.
	c := run(1)
	for i := range a {
		diff := math.Abs(float64(a[i] - c[i]))
		tol := 1e-5 * (1 + math.Abs(float64(a[i])))
		if diff > tol {
			t.Fatalf("1-vs-4-worker weights differ at %d beyond round-off: %v vs %v", i, c[i], a[i])
		}
	}
}

// freqCodedSamples builds windows whose PPG channel oscillates at a
// frequency proportional to the HR label — the essence of the real task,
// and robust to InputNorm (which erases amplitude, not frequency).
func freqCodedSamples(rng *rand.Rand, n int) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		x := NewTensor(InputChannels, InputSamples)
		level := rng.Float64()*2 - 1 // HR in [60, 120]
		hr := 90 + 30*level
		cycles := hr / 60 * 8 // 8-second window at 32 Hz
		for ti := 0; ti < x.T; ti++ {
			x.Set(0, ti, float32(math.Sin(2*math.Pi*cycles*float64(ti)/float64(x.T)))+
				float32(rng.NormFloat64()*0.05))
			x.Set(1, ti, float32(rng.NormFloat64()*0.1))
			x.Set(2, ti, float32(rng.NormFloat64()*0.1))
			x.Set(3, ti, float32(rng.NormFloat64()*0.1))
		}
		out = append(out, Sample{X: x, HR: hr})
	}
	return out
}

func TestFitEmptySet(t *testing.T) {
	net := NewTimePPGSmall()
	if _, err := Fit(net, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
}
