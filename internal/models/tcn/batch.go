package tcn

import "fmt"

// This file holds the batched counterpart of the single-window tensor: the
// (N, C, T) layout the GEMM-backed inference and training paths run on,
// plus the im2col/col2im packing that lowers dilated 1-D convolution onto
// the internal/gemm micro-kernels.
//
// Batched results are bitwise identical to running the serial per-window
// kernels sample by sample: every sample occupies its own contiguous block,
// each output element is accumulated bias-first in ascending (channel, tap)
// order — exactly the serial order — and the gemm kernels never reassociate
// the reduction. The record builder and the profiling tables rely on this.

// BatchTensor is a dense rank-3 array of float32 laid out sample-major:
// element (n, c, t) lives at Data[(n*C+c)*T+t], so Sample(n) is the same
// contiguous C×T block a serial Tensor would hold.
type BatchTensor struct {
	N, C, T int
	Data    []float32
}

// NewBatchTensor allocates a zeroed N×C×T batch.
func NewBatchTensor(n, c, t int) *BatchTensor {
	if n < 0 || c < 0 || t < 0 {
		panic(fmt.Sprintf("tcn: invalid batch tensor shape %d×%d×%d", n, c, t))
	}
	return &BatchTensor{N: n, C: c, T: t, Data: make([]float32, n*c*t)}
}

// Sample returns the contiguous C×T block of sample n (channel-major, the
// serial Tensor layout).
func (x *BatchTensor) Sample(n int) []float32 {
	sz := x.C * x.T
	return x.Data[n*sz : (n+1)*sz]
}

// Row returns the slice backing channel c of sample n.
func (x *BatchTensor) Row(n, c int) []float32 {
	off := (n*x.C + c) * x.T
	return x.Data[off : off+x.T]
}

// SampleTensor fills a Tensor header viewing sample n (sharing storage).
func (x *BatchTensor) SampleTensor(n int) Tensor {
	return Tensor{C: x.C, T: x.T, Data: x.Sample(n)}
}

// ensureBatchTensor returns *slot resized to n×c×t, reusing the backing
// array whenever its capacity suffices. Unlike ensureTensor, reuse is
// capacity-based rather than exact-shape: batch chunks shrink on ragged
// tails and the steady-state path must stay allocation-free across the
// full-chunk/tail-chunk alternation. Contents are NOT cleared.
func ensureBatchTensor(slot **BatchTensor, n, c, t int) *BatchTensor {
	need := n * c * t
	x := *slot
	if x == nil {
		x = &BatchTensor{Data: make([]float32, need)}
		*slot = x
	} else if cap(x.Data) < need {
		x.Data = make([]float32, need)
	} else {
		x.Data = x.Data[:need]
	}
	x.N, x.C, x.T = n, c, t
	return x
}

// ensureSlice grows *buf to n elements, reusing capacity when possible.
// Contents are NOT cleared. It is the scratch-buffer twin of
// ensureBatchTensor, shared by the float32 and int8 batch paths.
func ensureSlice[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	} else {
		*buf = (*buf)[:n]
	}
	return *buf
}

// im2colRow fills one tap row of an im2col panel: row[t] =
// xRow[t·stride + off], or 0 where the tap reads outside [0, inT) — for
// both element types the exact additive identity. Generic so the float32
// and int8 paths share one copy of the clamped-range logic.
func im2colRow[T int8 | float32](row, xRow []T, off, stride, inT, outT int) {
	t0, t1 := tapRange(off, stride, inT, outT)
	if t1 < t0 {
		for t := range row {
			row[t] = 0
		}
		return
	}
	for t := 0; t < t0; t++ {
		row[t] = 0
	}
	for t := t1 + 1; t < outT; t++ {
		row[t] = 0
	}
	if stride == 1 {
		copy(row[t0:t1+1], xRow[t0+off:t1+off+1])
	} else {
		src := t0*stride + off
		for t := t0; t <= t1; t++ {
			row[t] = xRow[src]
			src += stride
		}
	}
}

// im2col packs one C×T sample (xs, channel-major) into col as a J×outT
// row-major matrix with J = inC·kernel: col[(ci·K+k)·outT+t] holds
// xs[ci·inT + t·stride + k·dilation − padL]. Rows are ordered (ci, k)
// ascending — the serial kernels' accumulation order — so a GEMM over col
// reproduces them bitwise.
func im2col[T int8 | float32](col, xs []T, inC, inT, kernel, dilation, stride, padL, outT int) {
	j := 0
	for ci := 0; ci < inC; ci++ {
		xRow := xs[ci*inT : (ci+1)*inT]
		for k := 0; k < kernel; k++ {
			im2colRow(col[j*outT:(j+1)*outT], xRow, k*dilation-padL, stride, inT, outT)
			j++
		}
	}
}

// im2colWide packs the patches of ALL N samples (data, sample-major with
// inC×inT per sample) into one J×(N·outT) row-major panel: tap row j
// holds every sample's outT-column block in batch order,
// col[j·wide + n·outT + t]. One GEMM over the wide panel computes the
// whole batch's convolution while each output element keeps the exact
// per-sample accumulation chain (rows are still (ci, k) ascending, and
// column position never enters the reduction). This is the cross-sample
// lowering that keeps TimePPG-Small's tiny per-layer matrices from
// underfeeding the vector kernels.
func im2colWide[T int8 | float32](col, data []T, N, inC, inT, kernel, dilation, stride, padL, outT int) {
	wide := N * outT
	sz := inC * inT
	for n := 0; n < N; n++ {
		xs := data[n*sz : (n+1)*sz]
		j := 0
		for ci := 0; ci < inC; ci++ {
			xRow := xs[ci*inT : (ci+1)*inT]
			for k := 0; k < kernel; k++ {
				im2colRow(col[j*wide+n*outT:j*wide+(n+1)*outT], xRow, k*dilation-padL, stride, inT, outT)
				j++
			}
		}
	}
}

// col2imF32 scatter-adds a J×outT gradient matrix back into one C×T
// sample gradient. ld is the panel's row stride in elements: outT for a
// per-sample panel, N·outT when dcol points at one sample's column block
// inside a wide cross-sample panel. gxs must be pre-zeroed.
func col2imF32(gxs, dcol []float32, inC, inT, kernel, dilation, stride, padL, outT, ld int) {
	j := 0
	for ci := 0; ci < inC; ci++ {
		gxRow := gxs[ci*inT : (ci+1)*inT]
		for k := 0; k < kernel; k++ {
			row := dcol[j*ld : j*ld+outT]
			j++
			off := k*dilation - padL
			t0, t1 := tapRange(off, stride, inT, outT)
			if t1 < t0 {
				continue
			}
			if stride == 1 {
				dst := gxRow[t0+off : t1+off+1]
				src := row[t0 : t1+1]
				for i, v := range src {
					dst[i] += v
				}
			} else {
				src := t0*stride + off
				for t := t0; t <= t1; t++ {
					gxRow[src] += row[t]
					src += stride
				}
			}
		}
	}
}

// ForwardBatch runs the network over a batch and writes each sample's
// scalar output (the normalized HR) into out, which must have length
// x.N. Results are bitwise identical to calling Forward per sample; see
// the package documentation for why.
func (n *Network) ForwardBatch(x *BatchTensor, out []float32) {
	if len(out) != x.N {
		panic(fmt.Sprintf("tcn: network %s batch output has %d slots, want %d", n.Topology, len(out), x.N))
	}
	cur := x
	for _, l := range n.Layers {
		cur = l.ForwardBatch(cur)
	}
	if cur.C*cur.T != 1 || cur.N != x.N {
		panic(fmt.Sprintf("tcn: network %s batch output is %d×%d×%d, want %d×1×1",
			n.Topology, cur.N, cur.C, cur.T, x.N))
	}
	copy(out, cur.Data)
}

// BackwardBatch propagates per-sample scalar output gradients through the
// stack, accumulating parameter gradients over the whole batch.
// ForwardBatch must have been called first on the same layer instances.
// Unlike the bitwise-pinned forward pass, the batched reductions sum the
// per-sample weight-gradient contributions in a different association than
// sample-at-a-time Backward, so gradients may differ from the serial path
// in the last bits (training tolerates this; see Fit).
func (n *Network) BackwardBatch(outGrad []float32) {
	grad := ensureBatchTensor(&n.outGradB, len(outGrad), 1, 1)
	copy(grad.Data, outGrad)
	cur := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		cur = n.Layers[i].BackwardBatch(cur)
		if cur == nil && i != 0 {
			panic(fmt.Sprintf("tcn: layer %s returned nil batch gradient mid-stack", n.Layers[i].Name()))
		}
	}
}
