package tcn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dalia"
)

// batchSizes covers the shapes the estimator meets in practice: a single
// window, odd batches, a full internal chunk, and ragged tails just over
// one and two chunk boundaries.
var batchSizes = []int{1, 3, 5, batchChunk, batchChunk + 1, 2*batchChunk + 7}

func randomBatch(rng *rand.Rand, n, c, t int) *BatchTensor {
	x := NewBatchTensor(n, c, t)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestConv1DForwardBatchMatchesSerial sweeps kernels, dilations and strides
// over several lengths and batch sizes: the im2col+GEMM path must match the
// serial Forward bitwise on every sample (same bias-seeded, ascending-tap
// accumulation order).
func TestConv1DForwardBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, kernel := range []int{1, 2, 3, 5, 8} {
		for _, dil := range []int{1, 2, 4} {
			for _, stride := range []int{1, 2} {
				for _, inT := range []int{1, 2, 5, 31, 64} {
					l := randomConv(rng, 3, 2, kernel, dil, stride)
					xb := randomBatch(rng, 4, 3, inT)
					yb := l.ForwardBatch(xb)
					for n := 0; n < xb.N; n++ {
						xs := xb.SampleTensor(n)
						want := l.Forward(&xs)
						got := yb.Sample(n)
						if len(got) != want.Numel() {
							t.Fatalf("k%d d%d s%d T%d: batch sample %d has %d elems, want %d",
								kernel, dil, stride, inT, n, len(got), want.Numel())
						}
						for i := range want.Data {
							if got[i] != want.Data[i] {
								t.Fatalf("k%d d%d s%d T%d sample %d: elem %d = %v, want %v (must be bitwise equal)",
									kernel, dil, stride, inT, n, i, got[i], want.Data[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestConv1DBackwardBatchCloseToSerial checks the GEMM backward against
// sample-at-a-time Backward. The batched weight- and input-gradient
// reductions associate sums differently (per-tap partial sums vs col2im
// scatter order), so equality is to a tight tolerance rather than bitwise.
func TestConv1DBackwardBatchCloseToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kernel := range []int{1, 3, 5} {
		for _, dil := range []int{1, 4} {
			for _, stride := range []int{1, 2} {
				l := randomConv(rng, 2, 3, kernel, dil, stride)
				const N, inT = 3, 33
				xb := randomBatch(rng, N, 2, inT)
				yb := l.ForwardBatch(xb)
				gb := randomBatch(rng, N, yb.C, yb.T)

				// Serial reference over the same samples.
				ref := l.CloneForWorker().(*Conv1D)
				wantGX := make([][]float32, N)
				for n := 0; n < N; n++ {
					xs := xb.SampleTensor(n)
					ref.Forward(&xs)
					gs := gb.SampleTensor(n)
					gx := ref.Backward(&gs)
					wantGX[n] = append([]float32(nil), gx.Data...)
				}

				l.Weight.ZeroGrad()
				l.Bias.ZeroGrad()
				gxb := l.BackwardBatch(gb)
				const tol = 1e-4
				for i := range ref.Weight.G {
					if d := float64(l.Weight.G[i] - ref.Weight.G[i]); math.Abs(d) > tol {
						t.Fatalf("k%d d%d s%d: wG[%d] = %v, want %v", kernel, dil, stride, i, l.Weight.G[i], ref.Weight.G[i])
					}
				}
				for i := range ref.Bias.G {
					if d := float64(l.Bias.G[i] - ref.Bias.G[i]); math.Abs(d) > tol {
						t.Fatalf("k%d d%d s%d: bG[%d] = %v, want %v", kernel, dil, stride, i, l.Bias.G[i], ref.Bias.G[i])
					}
				}
				for n := 0; n < N; n++ {
					got := gxb.Sample(n)
					for i := range wantGX[n] {
						if d := float64(got[i] - wantGX[n][i]); math.Abs(d) > tol {
							t.Fatalf("k%d d%d s%d sample %d: gx[%d] = %v, want %v",
								kernel, dil, stride, n, i, got[i], wantGX[n][i])
						}
					}
				}
			}
		}
	}
}

// TestConvBatchWideMatchesPerSampleBitwise pins the cross-sample lowering
// to the per-sample accumulation chain, forward AND backward: for shapes
// under the wide-path threshold, an N-sample batch must reproduce N
// single-sample batches bitwise (N=1 never takes the wide path, so the
// reference below is the per-sample im2col+GEMM lowering). This is what
// lets retraining through the wide kernels leave cached weights — and
// with them every downstream artifact — byte-identical.
func TestConvBatchWideMatchesPerSampleBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for _, cfg := range []struct{ kernel, dil, stride int }{{3, 2, 1}, {3, 1, 2}, {5, 4, 1}} {
		l := randomConv(rng, 3, 6, cfg.kernel, cfg.dil, cfg.stride)
		const N, inT = 5, 64
		_, outT := l.OutShape(3, inT)
		if !crossSampleWorthIt(N, l.OutC, outT) {
			t.Fatalf("k%d d%d s%d: test shape no longer under the wide threshold", cfg.kernel, cfg.dil, cfg.stride)
		}
		xb := randomBatch(rng, N, 3, inT)
		yb := l.ForwardBatch(xb)
		gb := randomBatch(rng, N, yb.C, yb.T)
		l.Weight.ZeroGrad()
		l.Bias.ZeroGrad()
		gxb := l.BackwardBatch(gb)

		ref := l.CloneForWorker().(*Conv1D)
		ref.Weight.ZeroGrad()
		ref.Bias.ZeroGrad()
		for n := 0; n < N; n++ {
			x1 := &BatchTensor{N: 1, C: xb.C, T: xb.T, Data: xb.Sample(n)}
			y1 := ref.ForwardBatch(x1)
			for i, v := range y1.Data {
				if yb.Sample(n)[i] != v {
					t.Fatalf("k%d d%d s%d sample %d: fwd elem %d = %v, want %v (must be bitwise equal)",
						cfg.kernel, cfg.dil, cfg.stride, n, i, yb.Sample(n)[i], v)
				}
			}
			g1 := &BatchTensor{N: 1, C: gb.C, T: gb.T, Data: gb.Sample(n)}
			gx1 := ref.BackwardBatch(g1)
			for i, v := range gx1.Data {
				if gxb.Sample(n)[i] != v {
					t.Fatalf("k%d d%d s%d sample %d: gx elem %d = %v, want %v (must be bitwise equal)",
						cfg.kernel, cfg.dil, cfg.stride, n, i, gxb.Sample(n)[i], v)
				}
			}
		}
		for i := range ref.Weight.G {
			if l.Weight.G[i] != ref.Weight.G[i] {
				t.Fatalf("k%d d%d s%d: wG[%d] = %v, want %v (must be bitwise equal)",
					cfg.kernel, cfg.dil, cfg.stride, i, l.Weight.G[i], ref.Weight.G[i])
			}
		}
		for i := range ref.Bias.G {
			if l.Bias.G[i] != ref.Bias.G[i] {
				t.Fatalf("k%d d%d s%d: bG[%d] = %v, want %v (must be bitwise equal)",
					cfg.kernel, cfg.dil, cfg.stride, i, l.Bias.G[i], ref.Bias.G[i])
			}
		}
	}
}

// TestDenseBatchMatchesSerialBitwise pins both directions of the dense
// layer: the batched GEMM keeps the serial element order exactly, forward
// and backward.
func TestDenseBatchMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l := NewDense("t.fc", 24, 7)
	for i := range l.Weight.W {
		l.Weight.W[i] = float32(rng.NormFloat64())
	}
	for i := range l.Bias.W {
		l.Bias.W[i] = float32(rng.NormFloat64())
	}
	const N = 5
	xb := randomBatch(rng, N, 24, 1)
	yb := l.ForwardBatch(xb)
	gb := randomBatch(rng, N, 7, 1)

	ref := l.CloneForWorker().(*Dense)
	gxWant := make([][]float32, N)
	for n := 0; n < N; n++ {
		xs := xb.SampleTensor(n)
		y := ref.Forward(&xs)
		for o := 0; o < 7; o++ {
			if yb.Sample(n)[o] != y.Data[o] {
				t.Fatalf("forward sample %d out %d: %v vs %v", n, o, yb.Sample(n)[o], y.Data[o])
			}
		}
		gs := gb.SampleTensor(n)
		gx := ref.Backward(&gs)
		gxWant[n] = append([]float32(nil), gx.Data...)
	}
	l.Weight.ZeroGrad()
	l.Bias.ZeroGrad()
	gxb := l.BackwardBatch(gb)
	for i := range ref.Weight.G {
		if l.Weight.G[i] != ref.Weight.G[i] {
			t.Fatalf("wG[%d] = %v, want %v (must be bitwise equal)", i, l.Weight.G[i], ref.Weight.G[i])
		}
	}
	for i := range ref.Bias.G {
		if l.Bias.G[i] != ref.Bias.G[i] {
			t.Fatalf("bG[%d] = %v, want %v", i, l.Bias.G[i], ref.Bias.G[i])
		}
	}
	for n := 0; n < N; n++ {
		got := gxb.Sample(n)
		for i := range gxWant[n] {
			if got[i] != gxWant[n][i] {
				t.Fatalf("gx sample %d elem %d: %v vs %v", n, i, got[i], gxWant[n][i])
			}
		}
	}
}

// TestNetworkForwardBatchMatchesSerial pins the whole float stack, for both
// zoo topologies and every batch-size shape.
func TestNetworkForwardBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, build := range []func() *Network{NewTimePPGSmall, NewTimePPGBig} {
		net := build()
		net.InitWeights(3)
		ref := net.CloneForWorker()
		sizes := batchSizes
		if net.Topology == BigName {
			sizes = []int{1, 3, 5} // Big is ~60× the work; small batches prove the point
		}
		for _, N := range sizes {
			xb := randomBatch(rng, N, InputChannels, InputSamples)
			out := make([]float32, N)
			net.ForwardBatch(xb, out)
			for n := 0; n < N; n++ {
				xs := xb.SampleTensor(n)
				want := ref.Forward(&xs)
				if out[n] != want {
					t.Fatalf("%s N=%d sample %d: batch %v, serial %v (must be bitwise equal)",
						net.Topology, N, n, out[n], want)
				}
			}
		}
	}
}

// TestQuantForwardBatchMatchesSerial pins the int8 deployment path: the
// im2col+S8-GEMM batch kernels must reproduce QuantNetwork.Forward
// bitwise (int32 accumulation is exact, rescale expressions identical).
func TestQuantForwardBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, build := range []func() *Network{NewTimePPGSmall, NewTimePPGBig} {
		net := build()
		net.InitWeights(5)
		var calib []*Tensor
		for i := 0; i < 8; i++ {
			calib = append(calib, randomTensor(rng, InputChannels, InputSamples))
		}
		q, err := Quantize(net, calib)
		if err != nil {
			t.Fatal(err)
		}
		ref := q.CloneForWorker()
		sizes := batchSizes
		if net.Topology == BigName {
			sizes = []int{1, 3, 5}
		}
		for _, N := range sizes {
			xb := randomBatch(rng, N, InputChannels, InputSamples)
			out := make([]float32, N)
			q.ForwardBatch(xb, out)
			for n := 0; n < N; n++ {
				xs := xb.SampleTensor(n)
				want := ref.Forward(&xs)
				if out[n] != want {
					t.Fatalf("%s int8 N=%d sample %d: batch %v, serial %v (must be bitwise equal)",
						net.Topology, N, n, out[n], want)
				}
			}
		}
	}
}

func synthWindows(rng *rand.Rand, n int) []dalia.Window {
	ws := make([]dalia.Window, n)
	for i := range ws {
		w := dalia.Window{
			PPG:    make([]float64, InputSamples),
			AccelX: make([]float64, InputSamples),
			AccelY: make([]float64, InputSamples),
			AccelZ: make([]float64, InputSamples),
			TrueHR: 60 + 100*rng.Float64(),
		}
		for t := 0; t < InputSamples; t++ {
			w.PPG[t] = rng.NormFloat64()
			w.AccelX[t] = rng.NormFloat64()
			w.AccelY[t] = rng.NormFloat64()
			w.AccelZ[t] = rng.NormFloat64()
		}
		ws[i] = w
	}
	return ws
}

// TestEstimateHRBatchMatchesSerial pins the estimator API in both float32
// and int8 form over a ragged window count (two full chunks plus a tail),
// including that chunk boundaries leave no trace.
func TestEstimateHRBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	ws := synthWindows(rng, 2*batchChunk+3)
	net := NewTimePPGSmall()
	net.InitWeights(7)
	est := NewEstimator(net)

	check := func(mode string) {
		t.Helper()
		out := make([]float64, len(ws))
		est.EstimateHRBatch(ws, out)
		ref := est.Clone()
		for i := range ws {
			want := ref.EstimateHR(&ws[i])
			if out[i] != want {
				t.Fatalf("%s window %d: batch %v, serial %v (must be bitwise equal)", mode, i, out[i], want)
			}
		}
	}
	check("float32")

	var calib []*Tensor
	for i := 0; i < 8; i++ {
		calib = append(calib, WindowToTensor(&ws[i]))
	}
	if err := est.Quantize(calib); err != nil {
		t.Fatal(err)
	}
	check("int8")
}

// TestBatchPathZeroAllocSteadyState guards the arena reuse: once warm —
// including the full-chunk/ragged-tail alternation — the batched float32
// and int8 paths must not allocate.
func TestBatchPathZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	net := NewTimePPGSmall()
	net.InitWeights(9)
	xb := randomBatch(rng, 4, InputChannels, InputSamples)
	out := make([]float32, 4)
	net.ForwardBatch(xb, out)
	if n := testing.AllocsPerRun(20, func() { net.ForwardBatch(xb, out) }); n != 0 {
		t.Errorf("Network.ForwardBatch allocates %v per run in steady state", n)
	}
	grads := make([]float32, 4)
	net.BackwardBatch(grads)
	if n := testing.AllocsPerRun(20, func() { net.BackwardBatch(grads) }); n != 0 {
		t.Errorf("Network.BackwardBatch allocates %v per run in steady state", n)
	}

	ws := synthWindows(rng, batchChunk+5) // ragged: exercises tail-chunk reuse
	est := NewEstimator(net.CloneForWorker())
	preds := make([]float64, len(ws))
	est.EstimateHRBatch(ws, preds)
	if n := testing.AllocsPerRun(10, func() { est.EstimateHRBatch(ws, preds) }); n != 0 {
		t.Errorf("EstimateHRBatch (float32) allocates %v per run in steady state", n)
	}

	var calib []*Tensor
	for i := 0; i < 4; i++ {
		calib = append(calib, WindowToTensor(&ws[i]))
	}
	if err := est.Quantize(calib); err != nil {
		t.Fatal(err)
	}
	est.EstimateHRBatch(ws, preds)
	if n := testing.AllocsPerRun(10, func() { est.EstimateHRBatch(ws, preds) }); n != 0 {
		t.Errorf("EstimateHRBatch (int8) allocates %v per run in steady state", n)
	}
}

// TestBatchSerialInterleaveIsSafe guards that the scalar and batched paths
// keep separate arenas on one instance: interleaving them must not corrupt
// either result.
func TestBatchSerialInterleaveIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	net := NewTimePPGSmall()
	net.InitWeights(11)
	xb := randomBatch(rng, 3, InputChannels, InputSamples)
	out := make([]float32, 3)
	net.ForwardBatch(xb, out)
	x0 := xb.SampleTensor(0)
	serial := net.Forward(&x0)
	again := make([]float32, 3)
	net.ForwardBatch(xb, again)
	if serial != out[0] {
		t.Fatalf("serial after batch %v, batch %v", serial, out[0])
	}
	for i := range out {
		if out[i] != again[i] {
			t.Fatalf("batch after serial diverged at %d: %v vs %v", i, again[i], out[i])
		}
	}
}

func BenchmarkNetworkForwardBatchBig(b *testing.B) {
	net := NewTimePPGBig()
	net.InitWeights(1)
	rng := rand.New(rand.NewSource(51))
	xb := randomBatch(rng, batchChunk, InputChannels, InputSamples)
	out := make([]float32, batchChunk)
	net.ForwardBatch(xb, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(xb, out)
	}
	b.ReportMetric(float64(b.N*batchChunk), "windows")
}

// BenchmarkNetworkForwardBatchSmall measures the cross-sample path: every
// TimePPG-Small conv layer rides the wide im2col lowering, so the whole
// batch is three GEMMs per block instead of 3·N underfed per-sample ones.
func BenchmarkNetworkForwardBatchSmall(b *testing.B) {
	net := NewTimePPGSmall()
	net.InitWeights(1)
	rng := rand.New(rand.NewSource(55))
	xb := randomBatch(rng, batchChunk, InputChannels, InputSamples)
	out := make([]float32, batchChunk)
	net.ForwardBatch(xb, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(xb, out)
	}
	b.ReportMetric(float64(b.N*batchChunk), "windows")
}

func quantNet(b *testing.B, build func() *Network, seed int64) *QuantNetwork {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := build()
	net.InitWeights(2)
	var calib []*Tensor
	for i := 0; i < 8; i++ {
		calib = append(calib, randomTensor(rng, InputChannels, InputSamples))
	}
	q, err := Quantize(net, calib)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func quantBig(b *testing.B) *QuantNetwork {
	b.Helper()
	return quantNet(b, NewTimePPGBig, 52)
}

func BenchmarkQuantBigForwardSerial(b *testing.B) {
	q := quantBig(b)
	x := randomTensor(rand.New(rand.NewSource(53)), InputChannels, InputSamples)
	q.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Forward(x)
	}
}

func BenchmarkQuantBigForwardBatch(b *testing.B) {
	q := quantBig(b)
	rng := rand.New(rand.NewSource(54))
	xb := randomBatch(rng, batchChunk, InputChannels, InputSamples)
	out := make([]float32, batchChunk)
	q.ForwardBatch(xb, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ForwardBatch(xb, out)
	}
	b.ReportMetric(float64(b.N*batchChunk), "windows")
}

// BenchmarkQuantSmallForwardSerial / ...Batch pair the deployed int8
// TimePPG-Small path the same way the Big benchmarks do, so the
// cross-sample gain on the wearable-side network is measurable directly.
func BenchmarkQuantSmallForwardSerial(b *testing.B) {
	q := quantNet(b, NewTimePPGSmall, 56)
	x := randomTensor(rand.New(rand.NewSource(57)), InputChannels, InputSamples)
	q.Forward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Forward(x)
	}
}

func BenchmarkQuantSmallForwardBatch(b *testing.B) {
	q := quantNet(b, NewTimePPGSmall, 56)
	rng := rand.New(rand.NewSource(58))
	xb := randomBatch(rng, batchChunk, InputChannels, InputSamples)
	out := make([]float32, batchChunk)
	q.ForwardBatch(xb, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ForwardBatch(xb, out)
	}
	b.ReportMetric(float64(b.N*batchChunk), "windows")
}
