package tcn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Weight-file format (little endian):
//
//	magic "TCNW"  version u32  topologyLen u32  topology bytes
//	paramCount u32, then per parameter: nameLen u32, name, elems u32,
//	elems × float32.
//
// Weights are matched to the freshly built topology by order and name, so
// a file can only be loaded into the topology that produced it.

const weightMagic = "TCNW"
const weightVersion = 1

// Save writes the network's parameters to path. The write is crash-safe:
// it goes to a temporary file in the destination directory and is renamed
// into place only after a successful flush, so an interrupted run can
// never leave a truncated weight file behind (which would poison every
// later cache load).
func Save(n *Network, path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := saveTo(f, n); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func saveTo(f *os.File, n *Network) error {
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(weightMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(weightVersion)); err != nil {
		return err
	}
	if err := writeString(w, n.Topology); err != nil {
		return err
	}
	params := n.Params()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.W))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, p.W); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a weight file and returns a network of the stored topology.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != weightMagic {
		return nil, fmt.Errorf("tcn: %s is not a weight file", path)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != weightVersion {
		return nil, fmt.Errorf("tcn: unsupported weight version %d", version)
	}
	topology, err := readString(r)
	if err != nil {
		return nil, err
	}
	var net *Network
	switch topology {
	case SmallName:
		net = NewTimePPGSmall()
	case BigName:
		net = NewTimePPGBig()
	default:
		return nil, fmt.Errorf("tcn: unknown topology %q", topology)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	params := net.Params()
	if int(count) != len(params) {
		return nil, fmt.Errorf("tcn: %s has %d params, topology needs %d", path, count, len(params))
	}
	for _, p := range params {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		if name != p.Name {
			return nil, fmt.Errorf("tcn: parameter order mismatch: file %q, topology %q", name, p.Name)
		}
		var elems uint32
		if err := binary.Read(r, binary.LittleEndian, &elems); err != nil {
			return nil, err
		}
		if int(elems) != len(p.W) {
			return nil, fmt.Errorf("tcn: parameter %q has %d elements, want %d", name, elems, len(p.W))
		}
		if err := binary.Read(r, binary.LittleEndian, p.W); err != nil {
			return nil, err
		}
		for i, v := range p.W {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, fmt.Errorf("tcn: parameter %q element %d is not finite", name, i)
			}
		}
	}
	// A weight file is exactly its parameters: trailing bytes mean the
	// file was written by something else (or corrupted past the point the
	// per-parameter checks can see), so refuse it rather than silently
	// ignoring the tail.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("tcn: %s has trailing data after last parameter", path)
	}
	return net, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("tcn: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
