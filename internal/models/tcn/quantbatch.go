package tcn

import (
	"fmt"
	"math"

	"repro/internal/gemm"
)

// This file is the batched form of the int8 deployment path: the same
// im2col + GEMM lowering as the float batch kernels, but with int8
// operands, int32 accumulators and the per-output-channel rescale of the
// serial ops. Integer accumulation is exact, and the rescale applies the
// identical float expressions element-wise, so batched int8 inference is
// bitwise identical to QuantNetwork.Forward run window by window — the
// property the record builder and the paper tables rely on for the
// deployed wearable path.

// qBatchTensor is the batched int8 activation tensor, sample-major like
// BatchTensor: element (n, c, t) lives at Data[(n*C+c)*T+t].
type qBatchTensor struct {
	N, C, T int
	Data    []int8
	Scale   float32
}

// Sample returns the contiguous C×T int8 block of sample n.
func (x *qBatchTensor) Sample(n int) []int8 {
	sz := x.C * x.T
	return x.Data[n*sz : (n+1)*sz]
}

// ensureQBatchTensor mirrors ensureBatchTensor for int8 data
// (capacity-based reuse, contents not cleared).
func ensureQBatchTensor(slot **qBatchTensor, n, c, t int, scale float32) *qBatchTensor {
	need := n * c * t
	q := *slot
	if q == nil {
		q = &qBatchTensor{Data: make([]int8, need)}
		*slot = q
	} else if cap(q.Data) < need {
		q.Data = make([]int8, need)
	} else {
		q.Data = q.Data[:need]
	}
	q.N, q.C, q.T = n, c, t
	q.Scale = scale
	return q
}

// quantizeBatchInto quantizes a float batch with the same per-element
// expression as quantizeTensorInto.
func quantizeBatchInto(slot **qBatchTensor, x *BatchTensor, scale float32) *qBatchTensor {
	q := ensureQBatchTensor(slot, x.N, x.C, x.T, scale)
	for i, v := range x.Data {
		q.Data[i] = clampI8(float32(math.Round(float64(v / scale))))
	}
	return q
}

// rescaleRow applies the per-output-channel rescale of the serial kernel
// (round, optional fused ReLU, clamp) to one accumulator row — the exact
// per-element expressions of qConv.forward, shared by the per-sample and
// cross-sample batch paths.
func (l *qConv) rescaleRow(yr []int8, ar []int32, o int) {
	mult := l.inScale * l.wScale[o] / l.outScale
	for t, a := range ar {
		v := float32(math.Round(float64(float32(a) * mult)))
		if l.relu && v < 0 {
			v = 0
		}
		yr[t] = clampI8(v)
	}
}

// forwardBatch implements qOp for qConv: im2col packing, the int8 GEMM
// micro-kernel over bias-seeded int32 accumulators, then the
// per-output-channel rescale of the serial kernel — per sample for large
// layers, or as one wide cross-sample GEMM (the same lowering and
// heuristic as the float path; integer accumulation is exact, so the
// result is identical either way).
func (l *qConv) forwardBatch(x *qBatchTensor) *qBatchTensor {
	outT := (x.T-1)/l.stride + 1
	y := ensureQBatchTensor(&l.outB, x.N, l.outC, outT, l.outScale)
	J := l.inC * l.kernel
	padL := l.padLeft()
	if crossSampleWorthIt(x.N, l.outC, outT) {
		wide := x.N * outT
		col := ensureSlice(&l.colBuf, J*wide)
		im2colWide(col, x.Data, x.N, l.inC, x.T, l.kernel, l.dilation, l.stride, padL, outT)
		acc := ensureSlice(&l.accBuf, l.outC*wide)
		for o := 0; o < l.outC; o++ {
			b := l.bias[o]
			row := acc[o*wide : (o+1)*wide]
			for t := range row {
				row[t] = b
			}
		}
		gemm.S8(acc, l.weight, col, l.outC, J, wide)
		for n := 0; n < x.N; n++ {
			ys := y.Sample(n)
			for o := 0; o < l.outC; o++ {
				l.rescaleRow(ys[o*outT:(o+1)*outT], acc[o*wide+n*outT:o*wide+(n+1)*outT], o)
			}
		}
		return y
	}
	col := ensureSlice(&l.colBuf, J*outT)
	acc := ensureSlice(&l.accBuf, l.outC*outT)
	for n := 0; n < x.N; n++ {
		im2col(col, x.Sample(n), l.inC, x.T, l.kernel, l.dilation, l.stride, padL, outT)
		for o := 0; o < l.outC; o++ {
			b := l.bias[o]
			row := acc[o*outT : (o+1)*outT]
			for t := range row {
				row[t] = b
			}
		}
		gemm.S8(acc, l.weight, col, l.outC, J, outT)
		ys := y.Sample(n)
		for o := 0; o < l.outC; o++ {
			l.rescaleRow(ys[o*outT:(o+1)*outT], acc[o*outT:(o+1)*outT], o)
		}
	}
	return y
}

// forwardBatch implements qOp for qDense: the whole batch is one int8 GEMM
// against the weight rows (accumulators bias-seeded), followed by the
// serial rescale — into float for the final head, re-quantized otherwise.
func (l *qDense) forwardBatch(x *qBatchTensor) *qBatchTensor {
	N := x.N
	acc := ensureSlice(&l.accBuf, N*l.out)
	for n := 0; n < N; n++ {
		copy(acc[n*l.out:(n+1)*l.out], l.bias)
	}
	gemm.S8NT(acc, x.Data, l.weight, N, l.in, l.out)
	y := ensureQBatchTensor(&l.outBB, N, l.out, 1, l.outScale)
	if l.last {
		lo := ensureSlice(&l.lastOutB, N*l.out)
		for i, a := range acc {
			o := i % l.out
			realV := float32(a) * l.inScale * l.wScale[o]
			if l.relu && realV < 0 {
				realV = 0
			}
			lo[i] = realV
		}
		return y
	}
	for i, a := range acc {
		o := i % l.out
		realV := float32(a) * l.inScale * l.wScale[o]
		if l.relu && realV < 0 {
			realV = 0
		}
		y.Data[i] = clampI8(float32(math.Round(float64(realV / l.outScale))))
	}
	return y
}

// ForwardBatch runs batched int8 inference, writing each sample's scalar
// float output into out (length x.N). Results are bitwise identical to
// Forward per window.
func (q *QuantNetwork) ForwardBatch(x *BatchTensor, out []float32) {
	if len(out) != x.N {
		panic(fmt.Sprintf("tcn: quantized %s batch output has %d slots, want %d", q.Topology, len(out), x.N))
	}
	normed := q.norm.ForwardBatch(x)
	cur := quantizeBatchInto(&q.qinB, normed, q.inScale)
	var lastDense *qDense
	for _, op := range q.ops {
		cur = op.forwardBatch(cur)
		if d, ok := op.(*qDense); ok && d.last {
			lastDense = d
		}
	}
	if lastDense == nil || len(lastDense.lastOutB) != x.N {
		panic("tcn: quantized network lacks a scalar head")
	}
	copy(out, lastDense.lastOutB)
}
