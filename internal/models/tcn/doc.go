// Package tcn implements the Temporal Convolutional Network substrate of
// the reproduction: tensors, dilated 1-D convolutions with full manual
// backpropagation, an Adam trainer, the TimePPG-Small and TimePPG-Big
// topologies of the paper (3 blocks × 3 convolutional layers, two dilated
// and one strided per block), post-training int8 quantization and a
// file format for trained weights.
//
// The paper trains its networks with PyTorch and quantization-aware
// training and deploys them with X-CUBE-AI / TFLite; this package replaces
// that tooling with a self-contained pure-Go pipeline (see DESIGN.md §1).
// Absolute accuracy differs from the paper, but the architecture — and
// therefore the parameter/operation counts feeding the energy models — is
// preserved, as is the accuracy ordering between the zoo models.
package tcn
