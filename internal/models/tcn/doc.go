// Package tcn implements the Temporal Convolutional Network substrate of
// the reproduction: tensors, dilated 1-D convolutions with full manual
// backpropagation, an Adam trainer, the TimePPG-Small and TimePPG-Big
// topologies of the paper (3 blocks × 3 convolutional layers, two dilated
// and one strided per block), post-training int8 quantization and a
// file format for trained weights.
//
// The paper trains its networks with PyTorch and quantization-aware
// training and deploys them with X-CUBE-AI / TFLite; this package replaces
// that tooling with a self-contained pure-Go pipeline (see DESIGN.md §1).
// Absolute accuracy differs from the paper, but the architecture — and
// therefore the parameter/operation counts feeding the energy models — is
// preserved, as is the accuracy ordering between the zoo models.
//
// # Inference paths
//
// Every layer has two forms. The scalar path (Forward/Backward over C×T
// Tensors) is the reference: fused, allocation-free-after-warm-up kernels
// whose per-element accumulation order defines the numbers everything else
// must reproduce. The batched path (ForwardBatch/BackwardBatch over
// (N, C, T) BatchTensors) lowers convolution and dense layers onto the
// blocked, register-unrolled GEMM micro-kernels of internal/gemm via
// im2col packing — the CMSIS-NN-style structure the paper's deployed int8
// kernels use — and is how the record builder, the estimator API
// (HRNet.EstimateHRBatch) and the trainer actually run. Batched float32
// and int8 forward results are bitwise identical to the serial loops: the
// GEMMs accumulate each output element bias-seeded in ascending
// (channel, tap) order without reassociation, and the int8 ops use exact
// int32 arithmetic with the serial rescale expressions. Batched training
// additionally fuses the cross-worker gradient reduction and the Adam
// update into one parallel pass over parameter shards (Adam.StepFused).
//
// All layer and network instances reuse their activation arenas between
// calls (scalar and batched arenas are separate), so none are safe for
// concurrent use; CloneForWorker/Clone produce worker copies sharing
// weights.
package tcn
