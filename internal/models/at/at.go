// Package at implements the Adaptive Threshold heart-rate estimator (Shin
// et al., "Adaptive threshold method for the peak detection of
// photoplethysmographic waveform", 2009), the cheap classical model of the
// CHRIS Models Zoo.
//
// Following the paper's description (§III-C): the rolling mean of the
// signal over 24 samples forms an adaptive threshold; maximal runs where
// the raw signal exceeds the threshold are the regions of interest; the
// largest sample of each region is a peak; the median inter-peak interval
// maps to the heart rate. The method needs ≈3 k operations per 8-second
// window.
package at

import (
	"repro/internal/dalia"
	"repro/internal/dsp"
	"repro/internal/models"
)

// ModelName is the zoo identifier for this estimator.
const ModelName = "AT"

// Estimator is the Adaptive Threshold HR estimator. The zero value is not
// usable; call New.
type Estimator struct {
	// MeanWindow is the rolling-mean length in samples (paper: 24).
	MeanWindow int
	// MinHR/MaxHR bound plausible inter-beat intervals (BPM).
	MinHR, MaxHR float64
	// FallbackHR is returned when fewer than two plausible peaks exist.
	FallbackHR float64
	// Smooth is the length of a cheap moving-average pre-filter (≤1
	// disables it). It costs ≈Smooth ops per sample and suppresses the
	// sensor-noise double crossings that split regions of interest.
	Smooth int
}

// New returns the estimator with the paper's parameters.
func New() *Estimator {
	return &Estimator{MeanWindow: 24, MinHR: 35, MaxHR: 210, FallbackHR: 75, Smooth: 4}
}

// Name implements models.HREstimator.
func (e *Estimator) Name() string { return ModelName }

// Ops implements models.HREstimator: the paper quotes ≈3 k operations per
// window for AT.
func (e *Estimator) Ops() int64 { return 3_000 }

// Params implements models.HREstimator; AT has no trainable parameters.
func (e *Estimator) Params() int64 { return 0 }

// EstimateHR implements models.HREstimator.
func (e *Estimator) EstimateHR(w *dalia.Window) float64 {
	return models.ClampHR(e.estimate(w.PPG, w.Rate))
}

// CloneEstimator implements models.WorkerCloner. AT is pure configuration
// (no per-window state), so the clone is a plain copy.
func (e *Estimator) CloneEstimator() models.HREstimator {
	c := *e
	return &c
}

func (e *Estimator) estimate(ppg []float64, fs float64) float64 {
	if len(ppg) < e.MeanWindow*2 || fs <= 0 {
		return e.FallbackHR
	}
	if e.Smooth > 1 {
		ppg = dsp.RollingMean(ppg, e.Smooth)
	}
	thr := dsp.RollingMean(ppg, e.MeanWindow)
	regions := dsp.RegionsAbove(ppg, thr)
	if len(regions) < 2 {
		return e.FallbackHR
	}
	peaks := make([]int, 0, len(regions))
	for _, r := range regions {
		peaks = append(peaks, dsp.ArgMax(ppg, r.Start, r.End))
	}
	// Inter-beat intervals, keeping only physiologically plausible ones.
	minGap := fs * 60 / e.MaxHR
	maxGap := fs * 60 / e.MinHR
	var ibis []float64
	for i := 1; i < len(peaks); i++ {
		gap := float64(peaks[i] - peaks[i-1])
		if gap >= minGap && gap <= maxGap {
			ibis = append(ibis, gap)
		}
	}
	if len(ibis) == 0 {
		return e.FallbackHR
	}
	return 60 * fs / dsp.Median(ibis)
}

var (
	_ models.HREstimator  = (*Estimator)(nil)
	_ models.WorkerCloner = (*Estimator)(nil)
)
