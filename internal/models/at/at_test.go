package at

import (
	"math"
	"testing"

	"repro/internal/dalia"
	"repro/internal/dsp"
)

func syntheticWindow(hr float64, noise float64, seedPhase float64) *dalia.Window {
	const fs = 32.0
	const n = 256
	ppg := make([]float64, n)
	for i := range ppg {
		t := float64(i) / fs
		phase := hr / 60 * t
		// A narrow pulse train: strong fundamental with harmonics, like a
		// real PPG beat.
		frac := phase - math.Floor(phase)
		ppg[i] = math.Exp(-(frac-0.3)*(frac-0.3)/(2*0.01)) +
			noise*math.Sin(2*math.Pi*7*t+seedPhase)
	}
	return &dalia.Window{PPG: ppg, Rate: fs, TrueHR: hr}
}

func TestEstimateCleanPulseTrain(t *testing.T) {
	e := New()
	for _, hr := range []float64{55, 70, 90, 120, 150} {
		w := syntheticWindow(hr, 0, 0)
		got := e.EstimateHR(w)
		if math.Abs(got-hr) > 3 {
			t.Errorf("clean HR %v estimated as %v", hr, got)
		}
	}
}

func TestEstimateToleratesMildNoise(t *testing.T) {
	e := New()
	w := syntheticWindow(75, 0.15, 0.4)
	got := e.EstimateHR(w)
	if math.Abs(got-75) > 6 {
		t.Errorf("mildly noisy HR estimated as %v, want ≈75", got)
	}
}

func TestEstimateFallbacks(t *testing.T) {
	e := New()
	flat := &dalia.Window{PPG: make([]float64, 256), Rate: 32}
	if got := e.EstimateHR(flat); got != e.FallbackHR {
		t.Errorf("flat window estimate %v, want fallback %v", got, e.FallbackHR)
	}
	short := &dalia.Window{PPG: make([]float64, 10), Rate: 32}
	if got := e.EstimateHR(short); got != e.FallbackHR {
		t.Errorf("short window estimate %v, want fallback %v", got, e.FallbackHR)
	}
	if got := e.EstimateHR(&dalia.Window{PPG: make([]float64, 256), Rate: 0}); got != e.FallbackHR {
		t.Errorf("zero-rate estimate %v, want fallback", got)
	}
}

func TestEstimateClampsRange(t *testing.T) {
	e := New()
	// Whatever the input, output must stay in the physiological range.
	w := syntheticWindow(70, 2.5, 1.0) // heavy interference
	got := e.EstimateHR(w)
	if got < 35 || got > 210 {
		t.Errorf("estimate %v outside clamp range", got)
	}
}

func TestOnSyntheticDataset(t *testing.T) {
	// AT must be accurate on still windows and visibly degraded on
	// high-motion windows — the asymmetry CHRIS exploits.
	c := dalia.DefaultConfig()
	c.DurationScale = 0.04
	c.Subjects = 2
	e := New()
	var easyErr, hardErr []float64
	for s := 0; s < c.Subjects; s++ {
		rec, err := dalia.GenerateSubject(c, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range dalia.Windows(rec, c.WindowSamples, c.StrideSamples) {
			if w.Purity < 1 {
				continue
			}
			err := math.Abs(e.EstimateHR(&w) - w.TrueHR)
			switch w.Activity {
			case dalia.Sitting, dalia.Resting:
				easyErr = append(easyErr, err)
			case dalia.Walking, dalia.Stairs, dalia.TableSoccer:
				hardErr = append(hardErr, err)
			}
		}
	}
	if len(easyErr) == 0 || len(hardErr) == 0 {
		t.Fatal("missing activity coverage")
	}
	easy, hard := dsp.Mean(easyErr), dsp.Mean(hardErr)
	t.Logf("AT MAE: easy %.2f BPM, hard %.2f BPM", easy, hard)
	if easy > 12 {
		t.Errorf("easy-window MAE %.2f too high", easy)
	}
	if hard < easy+4 {
		t.Errorf("hard windows (%.2f) not clearly worse than easy (%.2f)", hard, easy)
	}
}

func TestInterfaceMetadata(t *testing.T) {
	e := New()
	if e.Name() != "AT" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.Ops() != 3000 {
		t.Errorf("Ops = %d, want 3000", e.Ops())
	}
	if e.Params() != 0 {
		t.Errorf("Params = %d, want 0", e.Params())
	}
}
