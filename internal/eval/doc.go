// Package eval provides the evaluation substrate: per-window record
// building for the CHRIS profiler, MAE metrics in the paper's
// activity-balanced form, per-activity breakdowns and ASCII table
// rendering for the experiment harness.
//
// BuildRecords is the package's center of gravity: one inference pass of
// every zoo model plus the difficulty detector over every window,
// materialized into core.WindowRecord rows so that profiling all 60
// configurations becomes a cheap aggregation. It fans out across
// GOMAXPROCS workers (models.WorkerCloner clones per chunk, batched
// GEMM-backed estimators within a chunk) while guaranteeing records
// bitwise independent of worker count and batch boundaries.
// BuildRecordsSink adds the persistence hooks the columnar record cache
// needs: finished chunks stream into a RecordSink (reccache.Writer) as
// they complete, and a resumed run restarts from an arbitrary window
// index when AllCloneable holds.
//
// Hot paths: the per-chunk estimator dispatch inside BuildRecords (the
// actual FLOPs live in internal/models/* and internal/gemm) and the
// per-activity aggregation loops in reportFromPreds/RecordsMAE, which are
// deterministic fixed-order float summations.
//
// BENCH kernels: the build_records section of BENCH_*.json (serial vs
// parallel ns/window, measured by bench.BuildBenchReport) covers this
// package; the model-level kernels it dispatches to are covered under
// their own packages.
package eval
