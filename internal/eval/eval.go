// Package eval provides the evaluation substrate: per-window record
// building for the CHRIS profiler, MAE metrics in the paper's
// activity-balanced form, per-activity breakdowns and ASCII table
// rendering for the experiment harness.
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dalia"
	"repro/internal/models"
	"repro/internal/models/rf"
)

// BuildRecords runs every zoo model and the difficulty detector over the
// windows once, producing the records the configuration profiler
// aggregates. Running inference once per model — instead of once per
// configuration — is what makes profiling all 60 configurations cheap.
//
// The work fans out across GOMAXPROCS workers: models implementing
// models.WorkerCloner (and the read-only difficulty detector) split the
// windows into contiguous chunks, each chunk served by a private worker
// clone; models without clone support — typically trackers whose output
// depends on window order — run serially over the full sequence in their
// own goroutine. Within a chunk, estimators implementing
// models.BatchHREstimator take the batched path — one GEMM-backed pass
// over the whole chunk — in preference to window-at-a-time dispatch.
// Every (window, model) value is computed exactly as in the serial path
// (batch implementations guarantee bitwise equality per window), so the
// records are bitwise independent of both the worker count and the batch
// boundaries.
func BuildRecords(ws []dalia.Window, zoo []models.HREstimator, cls *rf.Classifier) ([]core.WindowRecord, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("eval: no windows")
	}
	if len(zoo) == 0 {
		return nil, fmt.Errorf("eval: no models")
	}
	if cls == nil {
		return nil, fmt.Errorf("eval: nil classifier")
	}
	names := make([]string, len(zoo))
	for i, m := range zoo {
		names[i] = m.Name()
	}
	header := core.NewRecordHeader(names...)
	// One flat backing array keeps the dense prediction rows contiguous.
	flat := make([]float64, len(ws)*len(zoo))
	recs := make([]core.WindowRecord, len(ws))
	for i := range ws {
		recs[i] = core.WindowRecord{
			TrueHR:   ws[i].TrueHR,
			Activity: ws[i].Activity,
			Header:   header,
			Preds:    flat[i*len(zoo) : (i+1)*len(zoo) : (i+1)*len(zoo)],
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(ws) {
		workers = len(ws)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(ws) / workers
		hi := (w + 1) * len(ws) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var batchOut []float64 // lazily sized scratch shared by batch models
			for mi, m := range zoo {
				cloner, ok := m.(models.WorkerCloner)
				if !ok {
					continue // handled serially below
				}
				est := cloner.CloneEstimator()
				if be, ok := est.(models.BatchHREstimator); ok {
					if batchOut == nil {
						batchOut = make([]float64, hi-lo)
					}
					be.EstimateHRBatch(ws[lo:hi], batchOut)
					for i := lo; i < hi; i++ {
						recs[i].Preds[mi] = batchOut[i-lo]
					}
					continue
				}
				for i := lo; i < hi; i++ {
					recs[i].Preds[mi] = est.EstimateHR(&ws[i])
				}
			}
			// The forest is read-only under Classify; chunk it too.
			for i := lo; i < hi; i++ {
				recs[i].Difficulty = cls.DifficultyID(&ws[i])
			}
		}(lo, hi)
	}
	// Stateful models keep their sequential window order; each writes its
	// own dense column, so they still overlap with everything else. A batch
	// implementation is still preferred: sequencing is preserved because
	// the single goroutine sees every window in order.
	for mi, m := range zoo {
		if _, ok := m.(models.WorkerCloner); ok {
			continue
		}
		wg.Add(1)
		go func(mi int, m models.HREstimator) {
			defer wg.Done()
			if be, ok := m.(models.BatchHREstimator); ok {
				out := make([]float64, len(ws))
				be.EstimateHRBatch(ws, out)
				for i := range ws {
					recs[i].Preds[mi] = out[i]
				}
				return
			}
			for i := range ws {
				recs[i].Preds[mi] = m.EstimateHR(&ws[i])
			}
		}(mi, m)
	}
	wg.Wait()
	return recs, nil
}

// ModelReport summarizes one estimator's accuracy.
type ModelReport struct {
	Name string
	// MAE is the activity-balanced MAE (per-activity means averaged),
	// matching the paper's equal-representation evaluation.
	MAE float64
	// OverallMAE weights every window equally (duration-weighted view).
	OverallMAE float64
	// PerActivity maps each activity to its MAE.
	PerActivity map[dalia.Activity]float64
	Windows     int
}

// EvaluateModel measures an estimator over labelled windows.
func EvaluateModel(m models.HREstimator, ws []dalia.Window) (ModelReport, error) {
	if len(ws) == 0 {
		return ModelReport{}, fmt.Errorf("eval: no windows")
	}
	preds := make([]float64, len(ws))
	for i := range ws {
		preds[i] = m.EstimateHR(&ws[i])
	}
	return reportFromPreds(m.Name(), preds, ws), nil
}

// EvaluatePredictions builds a report from precomputed predictions (used
// when records already hold every model's outputs).
func EvaluatePredictions(name string, preds []float64, ws []dalia.Window) (ModelReport, error) {
	if len(preds) != len(ws) || len(ws) == 0 {
		return ModelReport{}, fmt.Errorf("eval: predictions/windows mismatch %d/%d", len(preds), len(ws))
	}
	return reportFromPreds(name, preds, ws), nil
}

func reportFromPreds(name string, preds []float64, ws []dalia.Window) ModelReport {
	sum := map[dalia.Activity]float64{}
	n := map[dalia.Activity]int{}
	var total float64
	for i := range ws {
		err := models.AbsError(preds[i], ws[i].TrueHR)
		sum[ws[i].Activity] += err
		n[ws[i].Activity]++
		total += err
	}
	per := make(map[dalia.Activity]float64, len(sum))
	var balanced float64
	var acts int
	for _, a := range dalia.Activities() { // fixed order: deterministic sum
		if n[a] == 0 {
			continue
		}
		per[a] = sum[a] / float64(n[a])
		balanced += per[a]
		acts++
	}
	return ModelReport{
		Name:        name,
		MAE:         balanced / float64(acts),
		OverallMAE:  total / float64(len(ws)),
		PerActivity: per,
		Windows:     len(ws),
	}
}

// RecordsMAE computes the activity-balanced MAE a single model achieves
// over profiling records (using its stored predictions).
func RecordsMAE(recs []core.WindowRecord, model string) (float64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("eval: no records")
	}
	header := recs[0].Header
	if header == nil {
		return 0, fmt.Errorf("eval: records lack a prediction header")
	}
	mi, ok := header.Index(model)
	if !ok {
		return 0, fmt.Errorf("eval: records lack predictions for %q", model)
	}
	var sum [dalia.NumActivities]float64
	var n [dalia.NumActivities]int
	for i := range recs {
		sum[recs[i].Activity] += models.AbsError(recs[i].Preds[mi], recs[i].TrueHR)
		n[recs[i].Activity]++
	}
	var balanced float64
	var acts int
	for a := 0; a < dalia.NumActivities; a++ { // fixed order: deterministic sum
		if n[a] == 0 {
			continue
		}
		balanced += sum[a] / float64(n[a])
		acts++
	}
	return balanced / float64(acts), nil
}
