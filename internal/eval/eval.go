package eval

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dalia"
	"repro/internal/models"
	"repro/internal/models/rf"
)

// RecordSink receives contiguous segments of finished records as a record
// build progresses; reccache.Writer is the intended implementation. start
// is the absolute record index of recs[0]. Segments for disjoint ranges
// may arrive concurrently and out of order.
type RecordSink interface {
	WriteSegment(start int, recs []core.WindowRecord) error
}

// AllCloneable reports whether every zoo model supports worker cloning —
// the precondition for resuming a record build from an arbitrary window
// index (a stateful tracker's output depends on having seen every prior
// window, so a suffix-only rebuild would not be bitwise reproducible).
func AllCloneable(zoo []models.HREstimator) bool {
	for _, m := range zoo {
		if _, ok := m.(models.WorkerCloner); !ok {
			return false
		}
	}
	return true
}

// BuildRecords runs every zoo model and the difficulty detector over the
// windows once, producing the records the configuration profiler
// aggregates. Running inference once per model — instead of once per
// configuration — is what makes profiling all 60 configurations cheap.
//
// The work fans out across GOMAXPROCS workers: models implementing
// models.WorkerCloner (and the read-only difficulty detector) split the
// windows into contiguous chunks, each chunk served by a private worker
// clone; models without clone support — typically trackers whose output
// depends on window order — run serially over the full sequence in their
// own goroutine. Within a chunk, estimators implementing
// models.BatchHREstimator take the batched path — one GEMM-backed pass
// over the whole chunk — in preference to window-at-a-time dispatch.
// Every (window, model) value is computed exactly as in the serial path
// (batch implementations guarantee bitwise equality per window), so the
// records are bitwise independent of both the worker count and the batch
// boundaries.
func BuildRecords(ws []dalia.Window, zoo []models.HREstimator, cls *rf.Classifier) ([]core.WindowRecord, error) {
	return BuildRecordsSink(ws, zoo, cls, nil, 0)
}

// BuildRecordsSink is BuildRecords with persistence hooks for the
// columnar record cache: windows before startAt are assumed already
// persisted by an interrupted run (every model must then satisfy
// AllCloneable, since only per-window-independent models can restart
// mid-sequence bitwise-identically), and finished records stream into
// sink as contiguous segments — each worker hands over its chunk the
// moment every model has filled it, so a long build checkpoints as it
// goes instead of in one final write. The returned slice covers
// ws[startAt:]; sink segments use absolute window indices.
func BuildRecordsSink(ws []dalia.Window, zoo []models.HREstimator, cls *rf.Classifier, sink RecordSink, startAt int) ([]core.WindowRecord, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("eval: no windows")
	}
	if len(zoo) == 0 {
		return nil, fmt.Errorf("eval: no models")
	}
	if cls == nil {
		return nil, fmt.Errorf("eval: nil classifier")
	}
	if startAt < 0 || startAt > len(ws) {
		return nil, fmt.Errorf("eval: resume offset %d outside %d windows", startAt, len(ws))
	}
	allClone := AllCloneable(zoo)
	if startAt > 0 && !allClone {
		return nil, fmt.Errorf("eval: cannot resume at window %d: zoo has sequential models", startAt)
	}
	sub := ws[startAt:]
	names := make([]string, len(zoo))
	for i, m := range zoo {
		names[i] = m.Name()
	}
	header := core.NewRecordHeader(names...)
	// One flat backing array keeps the dense prediction rows contiguous.
	flat := make([]float64, len(sub)*len(zoo))
	recs := make([]core.WindowRecord, len(sub))
	for i := range sub {
		recs[i] = core.WindowRecord{
			TrueHR:   sub[i].TrueHR,
			Activity: sub[i].Activity,
			Header:   header,
			Preds:    flat[i*len(zoo) : (i+1)*len(zoo) : (i+1)*len(zoo)],
		}
	}
	if len(sub) == 0 {
		return recs, nil
	}
	// Workers may stream their chunks into the sink only when no serial
	// model writes columns behind their backs.
	streamSink := sink
	if !allClone {
		streamSink = nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(sub) {
		workers = len(sub)
	}
	if workers < 1 {
		workers = 1
	}
	sinkErrs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(sub) / workers
		hi := (w + 1) * len(sub) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var batchOut []float64 // lazily sized scratch shared by batch models
			for mi, m := range zoo {
				cloner, ok := m.(models.WorkerCloner)
				if !ok {
					continue // handled serially below
				}
				est := cloner.CloneEstimator()
				if be, ok := est.(models.BatchHREstimator); ok {
					if batchOut == nil {
						batchOut = make([]float64, hi-lo)
					}
					be.EstimateHRBatch(sub[lo:hi], batchOut)
					for i := lo; i < hi; i++ {
						recs[i].Preds[mi] = batchOut[i-lo]
					}
					continue
				}
				for i := lo; i < hi; i++ {
					recs[i].Preds[mi] = est.EstimateHR(&sub[i])
				}
			}
			// The forest is read-only under Classify; chunk it too.
			for i := lo; i < hi; i++ {
				recs[i].Difficulty = cls.DifficultyID(&sub[i])
			}
			if streamSink != nil {
				sinkErrs[w] = streamSink.WriteSegment(startAt+lo, recs[lo:hi])
			}
		}(w, lo, hi)
	}
	// Stateful models keep their sequential window order; each writes its
	// own dense column, so they still overlap with everything else. A batch
	// implementation is still preferred: sequencing is preserved because
	// the single goroutine sees every window in order.
	for mi, m := range zoo {
		if _, ok := m.(models.WorkerCloner); ok {
			continue
		}
		wg.Add(1)
		go func(mi int, m models.HREstimator) {
			defer wg.Done()
			if be, ok := m.(models.BatchHREstimator); ok {
				out := make([]float64, len(sub))
				be.EstimateHRBatch(sub, out)
				for i := range sub {
					recs[i].Preds[mi] = out[i]
				}
				return
			}
			for i := range sub {
				recs[i].Preds[mi] = m.EstimateHR(&sub[i])
			}
		}(mi, m)
	}
	wg.Wait()
	for _, err := range sinkErrs {
		if err != nil {
			return nil, err
		}
	}
	// With serial models in the zoo a chunk is only complete once every
	// column goroutine has finished, so the sink gets one final segment.
	if sink != nil && streamSink == nil {
		if err := sink.WriteSegment(startAt, recs); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// ModelReport summarizes one estimator's accuracy.
type ModelReport struct {
	Name string
	// MAE is the activity-balanced MAE (per-activity means averaged),
	// matching the paper's equal-representation evaluation.
	MAE float64
	// OverallMAE weights every window equally (duration-weighted view).
	OverallMAE float64
	// PerActivity maps each activity to its MAE.
	PerActivity map[dalia.Activity]float64
	Windows     int
}

// EvaluateModel measures an estimator over labelled windows.
func EvaluateModel(m models.HREstimator, ws []dalia.Window) (ModelReport, error) {
	if len(ws) == 0 {
		return ModelReport{}, fmt.Errorf("eval: no windows")
	}
	preds := make([]float64, len(ws))
	for i := range ws {
		preds[i] = m.EstimateHR(&ws[i])
	}
	return reportFromPreds(m.Name(), preds, ws), nil
}

// EvaluatePredictions builds a report from precomputed predictions (used
// when records already hold every model's outputs).
func EvaluatePredictions(name string, preds []float64, ws []dalia.Window) (ModelReport, error) {
	if len(preds) != len(ws) || len(ws) == 0 {
		return ModelReport{}, fmt.Errorf("eval: predictions/windows mismatch %d/%d", len(preds), len(ws))
	}
	return reportFromPreds(name, preds, ws), nil
}

func reportFromPreds(name string, preds []float64, ws []dalia.Window) ModelReport {
	sum := map[dalia.Activity]float64{}
	n := map[dalia.Activity]int{}
	var total float64
	for i := range ws {
		err := models.AbsError(preds[i], ws[i].TrueHR)
		sum[ws[i].Activity] += err
		n[ws[i].Activity]++
		total += err
	}
	per := make(map[dalia.Activity]float64, len(sum))
	var balanced float64
	var acts int
	for _, a := range dalia.Activities() { // fixed order: deterministic sum
		if n[a] == 0 {
			continue
		}
		per[a] = sum[a] / float64(n[a])
		balanced += per[a]
		acts++
	}
	return ModelReport{
		Name:        name,
		MAE:         balanced / float64(acts),
		OverallMAE:  total / float64(len(ws)),
		PerActivity: per,
		Windows:     len(ws),
	}
}

// RecordsMAE computes the activity-balanced MAE a single model achieves
// over profiling records (using its stored predictions).
func RecordsMAE(recs []core.WindowRecord, model string) (float64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("eval: no records")
	}
	header := recs[0].Header
	if header == nil {
		return 0, fmt.Errorf("eval: records lack a prediction header")
	}
	mi, ok := header.Index(model)
	if !ok {
		return 0, fmt.Errorf("eval: records lack predictions for %q", model)
	}
	var sum [dalia.NumActivities]float64
	var n [dalia.NumActivities]int
	for i := range recs {
		sum[recs[i].Activity] += models.AbsError(recs[i].Preds[mi], recs[i].TrueHR)
		n[recs[i].Activity]++
	}
	var balanced float64
	var acts int
	for a := 0; a < dalia.NumActivities; a++ { // fixed order: deterministic sum
		if n[a] == 0 {
			continue
		}
		balanced += sum[a] / float64(n[a])
		acts++
	}
	return balanced / float64(acts), nil
}
