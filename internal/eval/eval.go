// Package eval provides the evaluation substrate: per-window record
// building for the CHRIS profiler, MAE metrics in the paper's
// activity-balanced form, per-activity breakdowns and ASCII table
// rendering for the experiment harness.
package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dalia"
	"repro/internal/models"
	"repro/internal/models/rf"
)

// BuildRecords runs every zoo model and the difficulty detector over the
// windows once, producing the records the configuration profiler
// aggregates. Running inference once per model — instead of once per
// configuration — is what makes profiling all 60 configurations cheap.
func BuildRecords(ws []dalia.Window, zoo []models.HREstimator, cls *rf.Classifier) ([]core.WindowRecord, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("eval: no windows")
	}
	if len(zoo) == 0 {
		return nil, fmt.Errorf("eval: no models")
	}
	if cls == nil {
		return nil, fmt.Errorf("eval: nil classifier")
	}
	recs := make([]core.WindowRecord, len(ws))
	for i := range ws {
		recs[i] = core.WindowRecord{
			TrueHR:     ws[i].TrueHR,
			Activity:   ws[i].Activity,
			Difficulty: cls.DifficultyID(&ws[i]),
			Pred:       make(map[string]float64, len(zoo)),
		}
	}
	for _, m := range zoo {
		name := m.Name()
		for i := range ws {
			recs[i].Pred[name] = m.EstimateHR(&ws[i])
		}
	}
	return recs, nil
}

// ModelReport summarizes one estimator's accuracy.
type ModelReport struct {
	Name string
	// MAE is the activity-balanced MAE (per-activity means averaged),
	// matching the paper's equal-representation evaluation.
	MAE float64
	// OverallMAE weights every window equally (duration-weighted view).
	OverallMAE float64
	// PerActivity maps each activity to its MAE.
	PerActivity map[dalia.Activity]float64
	Windows     int
}

// EvaluateModel measures an estimator over labelled windows.
func EvaluateModel(m models.HREstimator, ws []dalia.Window) (ModelReport, error) {
	if len(ws) == 0 {
		return ModelReport{}, fmt.Errorf("eval: no windows")
	}
	preds := make([]float64, len(ws))
	for i := range ws {
		preds[i] = m.EstimateHR(&ws[i])
	}
	return reportFromPreds(m.Name(), preds, ws), nil
}

// EvaluatePredictions builds a report from precomputed predictions (used
// when records already hold every model's outputs).
func EvaluatePredictions(name string, preds []float64, ws []dalia.Window) (ModelReport, error) {
	if len(preds) != len(ws) || len(ws) == 0 {
		return ModelReport{}, fmt.Errorf("eval: predictions/windows mismatch %d/%d", len(preds), len(ws))
	}
	return reportFromPreds(name, preds, ws), nil
}

func reportFromPreds(name string, preds []float64, ws []dalia.Window) ModelReport {
	sum := map[dalia.Activity]float64{}
	n := map[dalia.Activity]int{}
	var total float64
	for i := range ws {
		err := models.AbsError(preds[i], ws[i].TrueHR)
		sum[ws[i].Activity] += err
		n[ws[i].Activity]++
		total += err
	}
	per := make(map[dalia.Activity]float64, len(sum))
	var balanced float64
	var acts int
	for _, a := range dalia.Activities() { // fixed order: deterministic sum
		if n[a] == 0 {
			continue
		}
		per[a] = sum[a] / float64(n[a])
		balanced += per[a]
		acts++
	}
	return ModelReport{
		Name:        name,
		MAE:         balanced / float64(acts),
		OverallMAE:  total / float64(len(ws)),
		PerActivity: per,
		Windows:     len(ws),
	}
}

// RecordsMAE computes the activity-balanced MAE a single model achieves
// over profiling records (using its stored predictions).
func RecordsMAE(recs []core.WindowRecord, model string) (float64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("eval: no records")
	}
	sum := map[dalia.Activity]float64{}
	n := map[dalia.Activity]int{}
	for i := range recs {
		p, ok := recs[i].Pred[model]
		if !ok {
			return 0, fmt.Errorf("eval: records lack predictions for %q", model)
		}
		sum[recs[i].Activity] += models.AbsError(p, recs[i].TrueHR)
		n[recs[i].Activity]++
	}
	var balanced float64
	var acts int
	for _, a := range dalia.Activities() { // fixed order: deterministic sum
		if n[a] == 0 {
			continue
		}
		balanced += sum[a] / float64(n[a])
		acts++
	}
	return balanced / float64(acts), nil
}
