package eval

import (
	"fmt"
	"strings"
)

// Table is a minimal ASCII table builder used by the experiment harness to
// print paper-style rows.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "|")
	t.AddRow(parts...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}
