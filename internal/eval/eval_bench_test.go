package eval

import (
	"runtime"
	"testing"

	"repro/internal/dalia"
	"repro/internal/models"
	"repro/internal/models/at"
	"repro/internal/models/rf"
	"repro/internal/models/tcn"
)

// recordFixture assembles windows, a realistic zoo (AT + both TimePPG
// networks with nonzero weights) and a trained detector for the
// BuildRecords benchmarks.
func recordFixture(tb testing.TB) ([]dalia.Window, []models.HREstimator, *rf.Classifier) {
	tb.Helper()
	c := dalia.DefaultConfig()
	c.Subjects = 2
	c.DurationScale = 0.05
	var ws []dalia.Window
	for s := 0; s < c.Subjects; s++ {
		rec, err := dalia.GenerateSubject(c, s)
		if err != nil {
			tb.Fatal(err)
		}
		ws = append(ws, dalia.Windows(rec, c.WindowSamples, c.StrideSamples)...)
	}
	cls, err := rf.Train(ws, rf.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	small := tcn.NewTimePPGSmall()
	small.InitWeights(1)
	big := tcn.NewTimePPGBig()
	big.InitWeights(2)
	zoo := []models.HREstimator{at.New(), tcn.NewEstimator(small), tcn.NewEstimator(big)}
	return ws, zoo, cls
}

// TestBuildRecordsDeterministicAcrossWorkers pins the parallel fan-out to
// the serial semantics: records built under GOMAXPROCS=1 and the full core
// count must be bitwise identical.
func TestBuildRecordsDeterministicAcrossWorkers(t *testing.T) {
	ws, zoo, cls := recordFixture(t)
	prev := runtime.GOMAXPROCS(1)
	serial, err := BuildRecords(ws, zoo, cls)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildRecords(ws, zoo, cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Difficulty != parallel[i].Difficulty {
			t.Fatalf("record %d difficulty %d vs %d", i, serial[i].Difficulty, parallel[i].Difficulty)
		}
		for j := range serial[i].Preds {
			if serial[i].Preds[j] != parallel[i].Preds[j] {
				t.Fatalf("record %d model %d: %v vs %v (must be bitwise equal)",
					i, j, serial[i].Preds[j], parallel[i].Preds[j])
			}
		}
	}
}

func benchBuildRecords(b *testing.B, procs int) {
	ws, zoo, cls := recordFixture(b)
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRecords(ws, zoo, cls); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ws)), "windows")
}

func BenchmarkBuildRecordsSerial(b *testing.B) { benchBuildRecords(b, 1) }

func BenchmarkBuildRecordsParallel(b *testing.B) { benchBuildRecords(b, runtime.NumCPU()) }
