package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dalia"
	"repro/internal/models"
	"repro/internal/models/rf"
)

type biasEst struct {
	name string
	bias float64
}

func (b *biasEst) Name() string                       { return b.name }
func (b *biasEst) Ops() int64                         { return 1000 }
func (b *biasEst) Params() int64                      { return 0 }
func (b *biasEst) EstimateHR(w *dalia.Window) float64 { return w.TrueHR + b.bias }

var _ models.HREstimator = (*biasEst)(nil)

func windowsAndClassifier(t *testing.T) ([]dalia.Window, *rf.Classifier) {
	t.Helper()
	c := dalia.DefaultConfig()
	c.Subjects = 2
	c.DurationScale = 0.03
	var ws []dalia.Window
	for s := 0; s < c.Subjects; s++ {
		rec, err := dalia.GenerateSubject(c, s)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, dalia.Windows(rec, c.WindowSamples, c.StrideSamples)...)
	}
	cls, err := rf.Train(ws, rf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ws, cls
}

func TestBuildRecords(t *testing.T) {
	ws, cls := windowsAndClassifier(t)
	zoo := []models.HREstimator{&biasEst{name: "a", bias: 3}, &biasEst{name: "b", bias: -1}}
	recs, err := BuildRecords(ws, zoo, cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ws) {
		t.Fatalf("got %d records for %d windows", len(recs), len(ws))
	}
	for i, r := range recs {
		if r.Difficulty < 1 || r.Difficulty > dalia.NumActivities {
			t.Fatalf("record %d difficulty %d out of range", i, r.Difficulty)
		}
		p, ok := r.Pred("a")
		if !ok || math.Abs(p-(r.TrueHR+3)) > 1e-9 {
			t.Fatalf("record %d prediction wrong (%v, %v)", i, p, ok)
		}
		if r.Activity != ws[i].Activity {
			t.Fatalf("record %d activity mismatch", i)
		}
	}
}

func TestBuildRecordsErrors(t *testing.T) {
	ws, cls := windowsAndClassifier(t)
	zoo := []models.HREstimator{&biasEst{name: "a"}}
	if _, err := BuildRecords(nil, zoo, cls); err == nil {
		t.Error("no windows accepted")
	}
	if _, err := BuildRecords(ws, nil, cls); err == nil {
		t.Error("no models accepted")
	}
	if _, err := BuildRecords(ws, zoo, nil); err == nil {
		t.Error("nil classifier accepted")
	}
}

func TestEvaluateModelBalancedVsOverall(t *testing.T) {
	ws, _ := windowsAndClassifier(t)
	m := &biasEst{name: "const", bias: 4}
	rep, err := EvaluateModel(m, ws)
	if err != nil {
		t.Fatal(err)
	}
	// A constant-bias model has MAE 4 in every view.
	if math.Abs(rep.MAE-4) > 1e-9 || math.Abs(rep.OverallMAE-4) > 1e-9 {
		t.Errorf("MAE = %v / %v, want 4", rep.MAE, rep.OverallMAE)
	}
	if len(rep.PerActivity) == 0 || rep.Windows != len(ws) {
		t.Error("report incomplete")
	}
	for a, v := range rep.PerActivity {
		if math.Abs(v-4) > 1e-9 {
			t.Errorf("activity %v MAE = %v", a, v)
		}
	}
}

func TestBalancedDiffersFromOverall(t *testing.T) {
	// Hand-built windows: 3 sitting windows with error 1, 1 soccer window
	// with error 9 → overall (3·1+9)/4 = 3, balanced (1+9)/2 = 5.
	mk := func(act dalia.Activity, hr float64) dalia.Window {
		return dalia.Window{Activity: act, TrueHR: hr}
	}
	ws := []dalia.Window{
		mk(dalia.Sitting, 70), mk(dalia.Sitting, 70), mk(dalia.Sitting, 70),
		mk(dalia.TableSoccer, 120),
	}
	preds := []float64{71, 71, 71, 129}
	rep, err := EvaluatePredictions("x", preds, ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.OverallMAE-3) > 1e-9 {
		t.Errorf("overall = %v, want 3", rep.OverallMAE)
	}
	if math.Abs(rep.MAE-5) > 1e-9 {
		t.Errorf("balanced = %v, want 5", rep.MAE)
	}
	if _, err := EvaluatePredictions("x", preds[:2], ws); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRecordsMAE(t *testing.T) {
	ws, cls := windowsAndClassifier(t)
	zoo := []models.HREstimator{&biasEst{name: "a", bias: 2}}
	recs, _ := BuildRecords(ws, zoo, cls)
	mae, err := RecordsMAE(recs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mae-2) > 1e-9 {
		t.Errorf("RecordsMAE = %v, want 2", mae)
	}
	if _, err := RecordsMAE(recs, "ghost"); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := RecordsMAE(nil, "a"); err == nil {
		t.Error("empty records accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Model", "MAE", "Energy")
	tb.AddRow("AT", "10.99", "0.234")
	tb.AddRowf("%s|%0.2f|%0.3f", "Small", 5.6, 0.735)
	s := tb.String()
	for _, want := range []string{"Table X", "Model", "AT", "Small", "0.735", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Short rows padded, not panicking.
	tb.AddRow("only-model")
	_ = tb.String()
}
