package dalia

import (
	"testing"

	"repro/internal/dsp"
)

func TestDifficultyOrderingMatchesMotion(t *testing.T) {
	// The static difficulty IDs must agree with the motionRMS ordering the
	// profiles encode.
	prev := -1.0
	for _, a := range Activities() {
		rms := a.MotionRMS()
		if rms <= prev {
			t.Errorf("%v motionRMS %.3f not increasing (prev %.3f)", a, rms, prev)
		}
		prev = rms
		if a.DifficultyID() != int(a)+1 {
			t.Errorf("%v difficulty = %d, want %d", a, a.DifficultyID(), int(a)+1)
		}
	}
}

func TestDifficultyOrderingEmpirical(t *testing.T) {
	// The generated data must reproduce the static ranking: mean window
	// accel energy strictly increasing in difficulty ID (with generous
	// sampling).
	c := DefaultConfig()
	c.DurationScale = 0.06
	c.Subjects = 3
	sum := make(map[Activity]float64)
	n := make(map[Activity]float64)
	for s := 0; s < c.Subjects; s++ {
		rec, err := GenerateSubject(c, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range Windows(rec, c.WindowSamples, c.StrideSamples) {
			if w.Purity < 1 { // skip bout-boundary windows
				continue
			}
			sum[w.Activity] += w.AccelEnergy()
			n[w.Activity]++
		}
	}
	var means []float64
	for _, a := range Activities() {
		if n[a] == 0 {
			t.Fatalf("no windows for %v", a)
		}
		means = append(means, sum[a]/n[a])
	}
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1] {
			t.Errorf("empirical energy not increasing at rank %d: %v vs %v (%v)",
				i+1, means[i], means[i-1], Activities()[i])
		}
	}
	_ = dsp.Mean // keep import if asserts change
}

func TestActivityByDifficulty(t *testing.T) {
	for id := 1; id <= NumActivities; id++ {
		a, err := ActivityByDifficulty(id)
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if a.DifficultyID() != id {
			t.Errorf("round trip failed for id %d: got %v", id, a.DifficultyID())
		}
	}
	if _, err := ActivityByDifficulty(0); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := ActivityByDifficulty(10); err == nil {
		t.Error("id 10 accepted")
	}
}

func TestActivityStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Activities() {
		s := a.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate name %q", s)
		}
		seen[s] = true
		if !a.Valid() {
			t.Errorf("%v reported invalid", a)
		}
	}
	if Activity(99).Valid() {
		t.Error("Activity(99) reported valid")
	}
	if Activity(99).String() == "" {
		t.Error("invalid activity has empty String")
	}
}

func TestProtocolDurations(t *testing.T) {
	// Full-scale protocol must land near 150 min/subject so that 15
	// subjects reproduce the paper's 37.5 h.
	var total float64
	restShare := profiles[Resting].protocolMin / float64(restSlots())
	for _, a := range protocol {
		if a == Resting {
			total += restShare
		} else {
			total += a.ProtocolMinutes()
		}
	}
	if total < 140 || total > 160 {
		t.Errorf("protocol duration = %.1f min, want ≈150", total)
	}
}
