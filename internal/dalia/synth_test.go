package dalia

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

// tinyConfig keeps generation fast in unit tests.
func tinyConfig() Config {
	c := DefaultConfig()
	c.DurationScale = 0.02 // ≈3 min per subject
	c.Subjects = 4
	return c
}

func TestGenerateSubjectDeterministic(t *testing.T) {
	c := tinyConfig()
	r1, err := GenerateSubject(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GenerateSubject(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.PPG) != len(r2.PPG) {
		t.Fatalf("lengths differ: %d vs %d", len(r1.PPG), len(r2.PPG))
	}
	for i := range r1.PPG {
		if r1.PPG[i] != r2.PPG[i] || r1.AccelX[i] != r2.AccelX[i] || r1.TrueHR[i] != r2.TrueHR[i] {
			t.Fatalf("recordings diverge at sample %d", i)
		}
	}
}

func TestGenerateSubjectsDiffer(t *testing.T) {
	c := tinyConfig()
	r0, _ := GenerateSubject(c, 0)
	r1, _ := GenerateSubject(c, 1)
	same := 0
	n := min(len(r0.PPG), len(r1.PPG))
	for i := 0; i < n; i++ {
		if r0.PPG[i] == r1.PPG[i] {
			same++
		}
	}
	if same > n/100 {
		t.Errorf("subjects 0 and 1 share %d/%d identical samples", same, n)
	}
}

func TestGenerateSubjectErrors(t *testing.T) {
	c := tinyConfig()
	if _, err := GenerateSubject(c, -1); err == nil {
		t.Error("negative subject id accepted")
	}
	if _, err := GenerateSubject(c, c.Subjects); err == nil {
		t.Error("out-of-range subject id accepted")
	}
	bad := c
	bad.SampleRate = 0
	if _, err := GenerateSubject(bad, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestRecordingShapes(t *testing.T) {
	c := tinyConfig()
	rec, err := GenerateSubject(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := rec.Samples()
	if n == 0 {
		t.Fatal("empty recording")
	}
	for _, l := range [][]float64{rec.AccelX, rec.AccelY, rec.AccelZ, rec.TrueHR} {
		if len(l) != n {
			t.Fatalf("channel length %d != %d", len(l), n)
		}
	}
	if len(rec.Label) != n {
		t.Fatalf("label length %d != %d", len(rec.Label), n)
	}
}

func TestTrueHRPhysiological(t *testing.T) {
	c := tinyConfig()
	rec, _ := GenerateSubject(c, 2)
	for i, hr := range rec.TrueHR {
		if hr < 35 || hr > 210 {
			t.Fatalf("TrueHR[%d] = %v outside physiological bounds", i, hr)
		}
	}
}

func TestHRFollowsActivityIntensity(t *testing.T) {
	c := tinyConfig()
	c.DurationScale = 0.05
	rec, _ := GenerateSubject(c, 1)
	mean := map[Activity]float64{}
	count := map[Activity]float64{}
	for i, a := range rec.Label {
		mean[a] += rec.TrueHR[i]
		count[a]++
	}
	for a := range mean {
		mean[a] /= count[a]
	}
	// Vigorous activities must drive a clearly higher HR than sedentary
	// ones (second half of each bout dominates after the HR time
	// constant).
	if mean[Stairs] <= mean[Sitting]+10 {
		t.Errorf("stairs HR %v not clearly above sitting HR %v", mean[Stairs], mean[Sitting])
	}
	if mean[Cycling] <= mean[Resting]+10 {
		t.Errorf("cycling HR %v not clearly above resting HR %v", mean[Cycling], mean[Resting])
	}
}

func TestAccelEnergyTracksDifficulty(t *testing.T) {
	c := tinyConfig()
	c.DurationScale = 0.05
	rec, _ := GenerateSubject(c, 0)
	ws := Windows(rec, c.WindowSamples, c.StrideSamples)
	energy := map[Activity][]float64{}
	for i := range ws {
		w := &ws[i]
		energy[w.Activity] = append(energy[w.Activity], w.AccelEnergy())
	}
	means := map[Activity]float64{}
	for a, es := range energy {
		means[a] = dsp.Mean(es)
	}
	// The empirical accel-energy ordering must respect the static
	// difficulty ranking for well-separated pairs.
	pairs := [][2]Activity{
		{Sitting, Walking}, {Sitting, TableSoccer}, {Resting, Stairs},
		{Working, Walking}, {Driving, TableSoccer}, {Lunch, Stairs},
	}
	for _, p := range pairs {
		lo, hi := p[0], p[1]
		if means[lo] >= means[hi] {
			t.Errorf("accel energy of %v (%.4f) not below %v (%.4f)",
				lo, means[lo], hi, means[hi])
		}
	}
}

func TestPPGContainsCardiacComponent(t *testing.T) {
	c := tinyConfig()
	rec, _ := GenerateSubject(c, 3)
	ws := Windows(rec, c.WindowSamples, c.StrideSamples)
	// On sitting windows the dominant 0.5-4 Hz component of the PPG should
	// match the true HR within a few BPM for most windows.
	good, total := 0, 0
	for i := range ws {
		w := &ws[i]
		if (w.Activity != Sitting && w.Activity != Resting) || w.Purity < 1 {
			continue
		}
		total++
		ppg := append([]float64(nil), w.PPG...)
		dsp.Detrend(ppg)
		f := dsp.DominantFrequency(ppg, w.Rate, 0.5, 4)
		if math.Abs(f*60-w.TrueHR) < 6 {
			good++
		}
	}
	if total == 0 {
		t.Fatal("no sedentary windows generated")
	}
	if frac := float64(good) / float64(total); frac < 0.7 {
		t.Errorf("only %.0f%% of sedentary windows have a cardiac-dominant spectrum", frac*100)
	}
}

func TestMotionCorruptsPPG(t *testing.T) {
	// With artifact coupling disabled, the sedentary and vigorous windows
	// should both be cardiac-dominant; with coupling enabled, vigorous
	// windows must become spectrally harder.
	cOn := tinyConfig()
	cOff := cOn
	cOff.ArtifactCoupling = 0

	hardFrac := func(c Config) float64 {
		rec, err := GenerateSubject(c, 1)
		if err != nil {
			panic(err)
		}
		ws := Windows(rec, c.WindowSamples, c.StrideSamples)
		bad, total := 0, 0
		for i := range ws {
			w := &ws[i]
			if w.Activity != Walking && w.Activity != Stairs && w.Activity != TableSoccer {
				continue
			}
			total++
			ppg := append([]float64(nil), w.PPG...)
			dsp.Detrend(ppg)
			f := dsp.DominantFrequency(ppg, w.Rate, 0.5, 4)
			if math.Abs(f*60-w.TrueHR) > 10 {
				bad++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(bad) / float64(total)
	}

	on, off := hardFrac(cOn), hardFrac(cOff)
	if on <= off {
		t.Errorf("artifact coupling does not increase difficulty: on=%.2f off=%.2f", on, off)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
