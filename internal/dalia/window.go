package dalia

import "repro/internal/dsp"

// Window is one 8-second analysis window. Signal slices alias the parent
// Recording; callers must not mutate them.
type Window struct {
	Subject  int
	Start    int     // first sample index within the recording
	Rate     float64 // Hz
	PPG      []float64
	AccelX   []float64
	AccelY   []float64
	AccelZ   []float64
	TrueHR   float64  // BPM: mean instantaneous HR over the window
	Activity Activity // majority per-sample label
	// Purity is the fraction of samples carrying the majority label; 1
	// means the window lies entirely inside one activity bout.
	Purity float64
}

// AccelMagnitude returns the per-sample Euclidean norm of the three
// accelerometer axes.
func (w *Window) AccelMagnitude() []float64 {
	return dsp.Magnitude(w.AccelX, w.AccelY, w.AccelZ)
}

// AccelEnergy returns the mean squared gravity-free accelerometer
// magnitude, the paper's difficulty proxy.
func (w *Window) AccelEnergy() float64 {
	mag := w.AccelMagnitude()
	dsp.Detrend(mag)
	return dsp.Energy(mag)
}

// Windows slices a recording into analysis windows using the dataset
// window/stride configuration.
func Windows(rec *Recording, windowSamples, strideSamples int) []Window {
	if windowSamples <= 0 || strideSamples <= 0 || rec == nil {
		return nil
	}
	n := rec.Samples()
	var out []Window
	for start := 0; start+windowSamples <= n; start += strideSamples {
		end := start + windowSamples
		act, purity := majorityLabel(rec.Label[start:end])
		out = append(out, Window{
			Subject:  rec.Subject,
			Start:    start,
			Rate:     rec.Rate,
			PPG:      rec.PPG[start:end],
			AccelX:   rec.AccelX[start:end],
			AccelY:   rec.AccelY[start:end],
			AccelZ:   rec.AccelZ[start:end],
			TrueHR:   dsp.Mean(rec.TrueHR[start:end]),
			Activity: act,
			Purity:   purity,
		})
	}
	return out
}

func majorityLabel(labels []Activity) (Activity, float64) {
	var counts [numActivities]int
	for _, l := range labels {
		if l.Valid() {
			counts[l]++
		}
	}
	best := Activity(0)
	for a := Activity(0); a < numActivities; a++ {
		if counts[a] > counts[best] {
			best = a
		}
	}
	if len(labels) == 0 {
		return best, 0
	}
	return best, float64(counts[best]) / float64(len(labels))
}
