// Package dalia synthesizes a PPGDalia-like dataset: wrist PPG and 3-axis
// accelerometer recordings with ECG-grade ground-truth heart rate, for 15
// subjects performing the nine daily activities of the DaLiA protocol.
//
// The real PPGDalia dataset (Reiss et al., 2019) is distributed under terms
// that do not permit redistribution here, and this reproduction must run
// offline, so the dataset is substituted with a physiologically-motivated
// generator (see DESIGN.md §1). The generator preserves the two properties
// the CHRIS paper depends on:
//
//  1. Motion artifacts corrupt the PPG channel proportionally to wrist
//     acceleration, and each activity has a characteristic movement
//     intensity, so HR-estimation difficulty is predictable from
//     accelerometer energy alone.
//  2. The accelerometer channels carry enough information to both classify
//     the activity (for the Random-Forest difficulty detector) and to let a
//     learned model partially cancel the artifacts (sensor fusion).
//
// Signals are sampled at 32 Hz and consumed as 8-second windows (256
// samples) with a 2-second stride (64 samples), exactly like the paper.
package dalia
