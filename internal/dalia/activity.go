package dalia

import "fmt"

// Activity identifies one of the nine DaLiA protocol activities.
type Activity int

// The nine activities of the PPGDalia protocol (paper §III-A).
const (
	Sitting Activity = iota
	Resting
	Working
	Driving
	Lunch
	Cycling
	Walking
	Stairs
	TableSoccer
	numActivities
)

// NumActivities is the number of distinct activities (9).
const NumActivities = int(numActivities)

// String returns the human-readable activity name.
func (a Activity) String() string {
	switch a {
	case Sitting:
		return "sitting"
	case Resting:
		return "resting"
	case Working:
		return "working"
	case Driving:
		return "driving"
	case Lunch:
		return "lunch"
	case Cycling:
		return "cycling"
	case Walking:
		return "walking"
	case Stairs:
		return "stairs"
	case TableSoccer:
		return "table_soccer"
	default:
		return fmt.Sprintf("activity(%d)", int(a))
	}
}

// Valid reports whether a names one of the nine protocol activities.
func (a Activity) Valid() bool { return a >= 0 && a < numActivities }

// profile captures how an activity shapes the synthetic signals.
type profile struct {
	// hrLow/hrHigh bound the steady-state heart rate (BPM) the activity
	// drives a median subject to.
	hrLow, hrHigh float64
	// motionRMS is the RMS wrist acceleration (in g) beyond gravity.
	motionRMS float64
	// stepHz is the dominant periodic motion frequency (0 = aperiodic).
	stepHz float64
	// burstiness in [0,1] mixes continuous rhythm (0) with irregular
	// bursts (1), e.g. table soccer.
	burstiness float64
	// protocolMin is the DaLiA-like protocol duration in minutes.
	protocolMin float64
}

// profiles is ordered by Activity value. motionRMS is strictly increasing,
// which fixes the difficulty ranking (see DifficultyID): higher wrist
// acceleration ⇒ more motion artifact ⇒ harder HR estimation.
var profiles = [numActivities]profile{
	Sitting:     {hrLow: 58, hrHigh: 74, motionRMS: 0.015, stepHz: 0, burstiness: 0.1, protocolMin: 10},
	Resting:     {hrLow: 55, hrHigh: 70, motionRMS: 0.025, stepHz: 0, burstiness: 0.1, protocolMin: 45},
	Working:     {hrLow: 62, hrHigh: 80, motionRMS: 0.06, stepHz: 0, burstiness: 0.4, protocolMin: 20},
	Driving:     {hrLow: 65, hrHigh: 85, motionRMS: 0.11, stepHz: 4.2, burstiness: 0.2, protocolMin: 15},
	Lunch:       {hrLow: 63, hrHigh: 82, motionRMS: 0.19, stepHz: 0.7, burstiness: 0.5, protocolMin: 30},
	Cycling:     {hrLow: 92, hrHigh: 128, motionRMS: 0.32, stepHz: 1.3, burstiness: 0.15, protocolMin: 8},
	Walking:     {hrLow: 82, hrHigh: 108, motionRMS: 0.52, stepHz: 1.9, burstiness: 0.1, protocolMin: 10},
	Stairs:      {hrLow: 98, hrHigh: 132, motionRMS: 0.74, stepHz: 2.1, burstiness: 0.15, protocolMin: 5},
	TableSoccer: {hrLow: 95, hrHigh: 140, motionRMS: 1.05, stepHz: 2.6, burstiness: 0.8, protocolMin: 5},
}

// DifficultyID returns the 1-based difficulty rank of an activity, ordered
// by mean wrist-acceleration energy as in the paper's ref [19]: 1 is the
// stillest activity (sitting), 9 the most motion-corrupted (table soccer).
func (a Activity) DifficultyID() int {
	if !a.Valid() {
		return 0
	}
	// profiles is ordered by increasing motionRMS, so the Activity value
	// itself is the zero-based rank. Asserted by TestDifficultyOrdering.
	return int(a) + 1
}

// ActivityByDifficulty returns the activity holding the given 1-based
// difficulty rank.
func ActivityByDifficulty(id int) (Activity, error) {
	if id < 1 || id > NumActivities {
		return 0, fmt.Errorf("dalia: difficulty id %d out of range 1..%d", id, NumActivities)
	}
	return Activity(id - 1), nil
}

// Activities returns all nine activities in difficulty order.
func Activities() []Activity {
	out := make([]Activity, NumActivities)
	for i := range out {
		out[i] = Activity(i)
	}
	return out
}

// ProtocolMinutes returns the DaLiA-like protocol duration of the activity
// in minutes.
func (a Activity) ProtocolMinutes() float64 {
	if !a.Valid() {
		return 0
	}
	return profiles[a].protocolMin
}

// MotionRMS returns the characteristic wrist-acceleration RMS (g) of the
// activity, beyond gravity.
func (a Activity) MotionRMS() float64 {
	if !a.Valid() {
		return 0
	}
	return profiles[a].motionRMS
}

// protocol is the within-session activity order. DaLiA interleaves breaks;
// we fold all break time into the Resting slots so the total per-subject
// duration is ≈150 min (15 subjects ⇒ ≈37.5 h, matching the paper).
var protocol = []Activity{
	Sitting, Resting, Stairs, Resting, TableSoccer, Resting,
	Cycling, Resting, Driving, Resting, Lunch, Resting,
	Walking, Resting, Working,
}

// restSlots counts the Resting entries in protocol; each slot receives an
// equal share of Resting's protocolMin budget.
func restSlots() int {
	n := 0
	for _, a := range protocol {
		if a == Resting {
			n++
		}
	}
	return n
}
