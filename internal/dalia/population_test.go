package dalia

import (
	"math"
	"testing"
)

// popSampleConfig is the fleet-style per-user recording: 1 % of the
// protocol, one subject per seed.
func popSampleConfig(seed int64, hrShift float64) Config {
	c := DefaultConfig()
	c.Seed = seed
	c.Subjects = 1
	c.DurationScale = 0.01
	c.HRShift = hrShift
	return c
}

// TestPopulationHRBands samples 1000 synthetic users and checks the
// generator's population statistics stay inside the documented bands: the
// activity profiles span 55–140 BPM, subject traits add a ±6 BPM offset
// sigma, and the protocol is mostly sedentary, so per-user mean HR must
// land in [45, 150] and the population mean of means in [60, 105], with a
// real (> 1.5 BPM) spread across users. Activity coverage is only required
// of bouts long enough to survive the 1 % duration compression: a bout
// shorter than ~¾ of a window can lose every majority-label vote, so the
// two 5-minute protocol slots (stairs, table soccer) may legitimately
// vanish at this scale.
func TestPopulationHRBands(t *testing.T) {
	const users = 1000
	means := make([]float64, 0, users)
	var activitySeen [NumActivities]bool
	for u := 0; u < users; u++ {
		c := popSampleConfig(int64(1000+u), 0)
		rec, err := GenerateSubject(c, 0)
		if err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
		ws := Windows(rec, c.WindowSamples, c.StrideSamples)
		if len(ws) == 0 {
			t.Fatalf("user %d: no windows", u)
		}
		sum := 0.0
		for i := range ws {
			hr := ws[i].TrueHR
			if math.IsNaN(hr) || math.IsInf(hr, 0) {
				t.Fatalf("user %d window %d: TrueHR %v", u, i, hr)
			}
			sum += hr
			activitySeen[ws[i].Activity] = true
		}
		mean := sum / float64(len(ws))
		if mean < 45 || mean > 150 {
			t.Fatalf("user %d: mean HR %.1f outside [45, 150]", u, mean)
		}
		means = append(means, mean)
	}

	popMean, popVar := 0.0, 0.0
	for _, m := range means {
		popMean += m
	}
	popMean /= float64(len(means))
	for _, m := range means {
		popVar += (m - popMean) * (m - popMean)
	}
	popStd := math.Sqrt(popVar / float64(len(means)))
	if popMean < 60 || popMean > 105 {
		t.Fatalf("population mean HR %.1f outside [60, 105]", popMean)
	}
	if popStd < 1.5 {
		t.Fatalf("population HR spread %.2f BPM — users are collapsing onto one physiology", popStd)
	}
	c := popSampleConfig(0, 0)
	windowSec := float64(c.WindowSamples) / c.SampleRate
	seen := 0
	for a := 0; a < NumActivities; a++ {
		if activitySeen[a] {
			seen++
			continue
		}
		if bout := profiles[a].protocolMin * 60 * c.DurationScale; bout >= 0.75*windowSec {
			t.Errorf("activity %v (scaled bout %.1fs) never sampled across %d users", Activity(a), bout, users)
		}
	}
	if seen < 6 {
		t.Fatalf("only %d distinct activities sampled; population has collapsed", seen)
	}
}

// TestPopulationHRShiftMovesMean checks the fleet's physiology knob does
// what it claims: a +10 BPM HRShift moves the population mean by ≈10 BPM
// (cardiac dynamics smooth transitions, so allow ±2).
func TestPopulationHRShiftMovesMean(t *testing.T) {
	const users = 200
	meanOf := func(shift float64) float64 {
		total, n := 0.0, 0
		for u := 0; u < users; u++ {
			c := popSampleConfig(int64(2000+u), shift)
			rec, err := GenerateSubject(c, 0)
			if err != nil {
				t.Fatalf("shift %v user %d: %v", shift, u, err)
			}
			for _, w := range Windows(rec, c.WindowSamples, c.StrideSamples) {
				total += w.TrueHR
				n++
			}
		}
		return total / float64(n)
	}
	base := meanOf(0)
	shifted := meanOf(10)
	if delta := shifted - base; math.Abs(delta-10) > 2 {
		t.Fatalf("HRShift=10 moved the population mean by %.2f BPM, want ≈10", delta)
	}
}

// TestPopulationDegenerateConfigsRejected pins the validation contract the
// fleet layer relies on: degenerate parameters fail Validate (and
// GenerateSubject) instead of silently producing NaN signals.
func TestPopulationDegenerateConfigsRejected(t *testing.T) {
	mutate := []struct {
		name string
		fn   func(*Config)
	}{
		{"NaN HRShift", func(c *Config) { c.HRShift = math.NaN() }},
		{"Inf HRShift", func(c *Config) { c.HRShift = math.Inf(1) }},
		{"NaN coupling", func(c *Config) { c.ArtifactCoupling = math.NaN() }},
		{"negative coupling", func(c *Config) { c.ArtifactCoupling = -1 }},
		{"NaN noise", func(c *Config) { c.SensorNoise = math.NaN() }},
		{"negative noise", func(c *Config) { c.SensorNoise = -0.1 }},
		{"zero duration", func(c *Config) { c.DurationScale = 0 }},
		{"NaN duration", func(c *Config) { c.DurationScale = math.NaN() }},
		{"NaN sample rate", func(c *Config) { c.SampleRate = math.NaN() }},
	}
	for _, m := range mutate {
		c := popSampleConfig(1, 0)
		m.fn(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s passed Validate", m.name)
		}
		if _, err := GenerateSubject(c, 0); err == nil {
			t.Errorf("%s passed GenerateSubject", m.name)
		}
	}
}
