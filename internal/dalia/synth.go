package dalia

import (
	"fmt"
	"math"
	"math/rand"
)

// Config controls dataset synthesis. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// Seed makes the whole dataset deterministic. Subject k derives its
	// own generator from Seed and k, so subjects can be produced
	// independently and in any order.
	Seed int64
	// SampleRate in Hz for PPG and accelerometer (paper: 32 Hz).
	SampleRate float64
	// WindowSamples and StrideSamples define the analysis windows
	// (paper: 256 and 64, i.e. 8 s windows every 2 s).
	WindowSamples int
	StrideSamples int
	// Subjects is the cohort size (paper: 15).
	Subjects int
	// DurationScale uniformly scales every protocol activity duration.
	// 1.0 reproduces the full ≈37.5 h dataset; tests use much smaller
	// values.
	DurationScale float64
	// ArtifactCoupling scales how strongly wrist acceleration corrupts
	// the PPG channel. 1.0 is the calibrated default.
	ArtifactCoupling float64
	// SensorNoise is the white-noise sigma added to the PPG channel,
	// relative to the pulse amplitude.
	SensorNoise float64
	// HRShift adds a constant BPM offset to every activity's target band,
	// on top of the subject's own random hrOffset trait. The fleet layer
	// uses it as a per-user physiology knob; 0 (the default) reproduces
	// the original generator bitwise.
	HRShift float64
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		SampleRate:       32,
		WindowSamples:    256,
		StrideSamples:    64,
		Subjects:         15,
		DurationScale:    1.0,
		ArtifactCoupling: 1.0,
		SensorNoise:      0.06,
	}
}

// Scaled returns a copy of c with DurationScale replaced; a convenience for
// tests and benchmarks that need a smaller cohort recording.
func (c Config) Scaled(scale float64) Config {
	c.DurationScale = scale
	return c
}

// Validate reports whether the configuration is usable. Every numeric
// field must be finite: a NaN coupling, noise sigma or duration scale
// would not trip any threshold below (NaN compares false) and instead
// silently poison every generated sample, so degenerate parameters are
// rejected here rather than producing NaN signals downstream.
func (c Config) Validate() error {
	finite := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
	switch {
	case !finite(c.SampleRate) || c.SampleRate <= 0:
		return fmt.Errorf("dalia: SampleRate must be positive and finite, got %v", c.SampleRate)
	case c.WindowSamples <= 0 || c.StrideSamples <= 0:
		return fmt.Errorf("dalia: window %d / stride %d must be positive", c.WindowSamples, c.StrideSamples)
	case c.Subjects <= 0:
		return fmt.Errorf("dalia: Subjects must be positive, got %d", c.Subjects)
	case !finite(c.DurationScale) || c.DurationScale <= 0:
		return fmt.Errorf("dalia: DurationScale must be positive and finite, got %v", c.DurationScale)
	case !finite(c.ArtifactCoupling) || c.ArtifactCoupling < 0:
		return fmt.Errorf("dalia: ArtifactCoupling must be non-negative and finite, got %v", c.ArtifactCoupling)
	case !finite(c.SensorNoise) || c.SensorNoise < 0:
		return fmt.Errorf("dalia: SensorNoise must be non-negative and finite, got %v", c.SensorNoise)
	case !finite(c.HRShift):
		return fmt.Errorf("dalia: HRShift must be finite, got %v", c.HRShift)
	}
	return nil
}

// Recording is one subject's full synchronized session.
type Recording struct {
	Subject int
	Rate    float64
	// PPG is the raw (artifact-corrupted) photoplethysmogram.
	PPG []float64
	// AccelX/Y/Z are the wrist accelerometer axes in g.
	AccelX, AccelY, AccelZ []float64
	// TrueHR is the instantaneous ground-truth heart rate (BPM) per
	// sample, the synthetic stand-in for the ECG chest-band reference.
	TrueHR []float64
	// Label is the per-sample activity annotation.
	Label []Activity
}

// Samples returns the recording length in samples.
func (r *Recording) Samples() int { return len(r.PPG) }

// subjectTraits are fixed per-subject physiological parameters.
type subjectTraits struct {
	hrOffset  float64    // BPM shift of every activity's target band
	hrTau     float64    // seconds, cardiac response time constant
	pulseAmp  float64    // PPG pulse amplitude
	dicrotic  float64    // relative dicrotic-wave amplitude
	respHz    float64    // respiration frequency
	rsaDepth  float64    // respiratory sinus arrhythmia depth, BPM
	couplingG [3]float64 // per-axis artifact coupling gains
	skinNoise float64    // extra multiplicative perfusion noise
}

func newSubjectTraits(rng *rand.Rand) subjectTraits {
	return subjectTraits{
		hrOffset:  rng.NormFloat64() * 6,
		hrTau:     25 + rng.Float64()*20,
		pulseAmp:  0.8 + rng.Float64()*0.6,
		dicrotic:  0.2 + rng.Float64()*0.25,
		respHz:    0.2 + rng.Float64()*0.12,
		rsaDepth:  1.5 + rng.Float64()*2.0,
		couplingG: [3]float64{0.9 + rng.Float64()*0.4, 0.7 + rng.Float64()*0.4, 0.5 + rng.Float64()*0.4},
		skinNoise: 0.02 + rng.Float64()*0.03,
	}
}

// GenerateSubject synthesizes the full recording for subject id
// (0 ≤ id < c.Subjects). It is deterministic in (c.Seed, id).
func GenerateSubject(c Config, id int) (*Recording, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= c.Subjects {
		return nil, fmt.Errorf("dalia: subject %d out of range 0..%d", id, c.Subjects-1)
	}
	rng := rand.New(rand.NewSource(c.Seed*1_000_003 + int64(id)*7919 + 17))
	traits := newSubjectTraits(rng)

	// Build the per-sample activity schedule.
	restShare := profiles[Resting].protocolMin / float64(restSlots())
	var schedule []Activity
	for _, act := range protocol {
		minutes := profiles[act].protocolMin
		if act == Resting {
			minutes = restShare
		}
		n := int(minutes * 60 * c.SampleRate * c.DurationScale)
		for i := 0; i < n; i++ {
			schedule = append(schedule, act)
		}
	}
	n := len(schedule)
	if n == 0 {
		return nil, fmt.Errorf("dalia: DurationScale %v too small: empty schedule", c.DurationScale)
	}

	rec := &Recording{
		Subject: id,
		Rate:    c.SampleRate,
		PPG:     make([]float64, n),
		AccelX:  make([]float64, n),
		AccelY:  make([]float64, n),
		AccelZ:  make([]float64, n),
		TrueHR:  make([]float64, n),
		Label:   schedule,
	}

	dt := 1 / c.SampleRate
	// When the session is time-compressed for tests/benchmarks, compress
	// the cardiac dynamics too so every bout still reaches steady state.
	tauScale := c.DurationScale
	if tauScale > 1 {
		tauScale = 1
	}
	if tauScale < 0.02 {
		tauScale = 0.02
	}
	hrTau := traits.hrTau * tauScale
	if hrTau < 0.5 {
		hrTau = 0.5
	}
	hr := profiles[schedule[0]].hrLow + traits.hrOffset + c.HRShift + 5
	phase := rng.Float64()
	respPhase := rng.Float64() * 2 * math.Pi
	drift := 0.0
	hrWander := 0.0
	// Per-activity cached target; re-rolled whenever the activity changes
	// so each bout lands somewhere in the activity's HR band.
	curAct := Activity(-1)
	hrTarget := hr
	motion := newMotionState(rng)

	for i := 0; i < n; i++ {
		act := schedule[i]
		p := profiles[act]
		if act != curAct {
			curAct = act
			span := p.hrHigh - p.hrLow
			hrTarget = p.hrLow + rng.Float64()*span + traits.hrOffset + c.HRShift
		}
		// Cardiac dynamics: first-order approach to the activity target,
		// a slow random wander, and respiratory sinus arrhythmia.
		hrWander += rng.NormFloat64() * 0.05
		hrWander *= 0.9995
		hr += (hrTarget - hr) * dt / hrTau
		respPhase += 2 * math.Pi * traits.respHz * dt
		inst := hr + hrWander + traits.rsaDepth*math.Sin(respPhase)
		if inst < 35 {
			inst = 35
		}
		if inst > 210 {
			inst = 210
		}
		rec.TrueHR[i] = inst

		// Accelerometer: gravity projection + activity motion.
		ax, ay, az := motion.step(rng, p, dt)
		rec.AccelX[i] = ax
		rec.AccelY[i] = ay
		rec.AccelZ[i] = az

		// PPG: pulse train at the instantaneous HR, respiration-coupled
		// baseline, slow drift, motion artifact, sensor noise.
		phase += inst / 60 * dt
		if phase >= 1 {
			phase -= 1
		}
		pulse := pulseShape(phase, traits.dicrotic)
		drift += rng.NormFloat64() * 0.002
		drift *= 0.999
		baseline := 0.25*math.Sin(respPhase) + drift
		perf := 1 + traits.skinNoise*math.Sin(2*math.Pi*0.01*float64(i)*dt+1.3)
		// Motion artifact: linear pickup of each axis' dynamic part plus a
		// rectified term that mimics light-leakage saturation events.
		dynX, dynY, dynZ := motion.dynamic()
		ma := traits.couplingG[0]*dynX + traits.couplingG[1]*dynY + traits.couplingG[2]*dynZ
		ma += 0.6 * math.Abs(dynX+dynZ)
		ma *= c.ArtifactCoupling
		noise := rng.NormFloat64() * c.SensorNoise * traits.pulseAmp
		rec.PPG[i] = traits.pulseAmp*perf*pulse + baseline + ma + noise
	}
	return rec, nil
}

// pulseShape evaluates a normalized PPG beat template at phase φ ∈ [0,1):
// a systolic peak followed by a dicrotic wave.
func pulseShape(phase, dicrotic float64) float64 {
	g := func(mu, sigma float64) float64 {
		d := phase - mu
		// Wrap so the template is periodic.
		if d > 0.5 {
			d -= 1
		}
		if d < -0.5 {
			d += 1
		}
		return math.Exp(-d * d / (2 * sigma * sigma))
	}
	return g(0.18, 0.10) + dicrotic*g(0.52, 0.14)
}

// motionState integrates the wrist-motion model: a slowly reorienting
// gravity vector plus periodic limb swing with harmonics and, for bursty
// activities, amplitude gating.
type motionState struct {
	gravTheta, gravPhi float64
	swingPhase         float64
	gate               float64 // burst envelope in [0,1]
	gateTarget         float64
	lastDyn            [3]float64
}

func newMotionState(rng *rand.Rand) *motionState {
	return &motionState{
		gravTheta: rng.Float64() * math.Pi,
		gravPhi:   rng.Float64() * 2 * math.Pi,
		gate:      1,
	}
}

// step advances one sample and returns the total acceleration per axis (g).
func (m *motionState) step(rng *rand.Rand, p profile, dt float64) (ax, ay, az float64) {
	// Gravity drifts slowly as the wrist reorients.
	m.gravTheta += rng.NormFloat64() * 0.002
	m.gravPhi += rng.NormFloat64() * 0.003
	gx := math.Sin(m.gravTheta) * math.Cos(m.gravPhi)
	gy := math.Sin(m.gravTheta) * math.Sin(m.gravPhi)
	gz := math.Cos(m.gravTheta)

	// Burst gating: bursty activities alternate quiet and violent spells.
	if rng.Float64() < dt/2.0 { // re-roll target every ~2 s on average
		if rng.Float64() < p.burstiness {
			m.gateTarget = rng.Float64() * 2.2
		} else {
			m.gateTarget = 0.7 + rng.Float64()*0.6
		}
	}
	m.gate += (m.gateTarget - m.gate) * dt * 4

	amp := p.motionRMS * m.gate
	var dx, dy, dz float64
	if p.stepHz > 0 {
		m.swingPhase += 2 * math.Pi * p.stepHz * dt * (1 + 0.02*rng.NormFloat64())
		s1 := math.Sin(m.swingPhase)
		s2 := math.Sin(2*m.swingPhase + 0.8)
		dx = amp * (1.1*s1 + 0.4*s2)
		dy = amp * (0.8*math.Sin(m.swingPhase+1.9) + 0.3*s2)
		dz = amp * (0.6*s2 + 0.5*math.Sin(m.swingPhase+0.5))
	}
	// Broadband jitter always present, scaled with activity intensity.
	dx += amp * 0.45 * rng.NormFloat64()
	dy += amp * 0.45 * rng.NormFloat64()
	dz += amp * 0.45 * rng.NormFloat64()

	m.lastDyn = [3]float64{dx, dy, dz}
	return gx + dx, gy + dy, gz + dz
}

// dynamic returns the gravity-free part of the last generated sample; this
// is what couples into the PPG as motion artifact.
func (m *motionState) dynamic() (x, y, z float64) {
	return m.lastDyn[0], m.lastDyn[1], m.lastDyn[2]
}
