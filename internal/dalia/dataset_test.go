package dalia

import "testing"

func TestDatasetWindows(t *testing.T) {
	c := tinyConfig()
	ds, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ds.SubjectWindows(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	for i := range ws {
		w := &ws[i]
		if len(w.PPG) != c.WindowSamples {
			t.Fatalf("window %d has %d samples", i, len(w.PPG))
		}
		if i > 0 && w.Start-ws[i-1].Start != c.StrideSamples {
			t.Fatalf("stride between windows %d and %d is %d", i-1, i, w.Start-ws[i-1].Start)
		}
		if !w.Activity.Valid() {
			t.Fatalf("window %d has invalid activity", i)
		}
		if w.TrueHR < 35 || w.TrueHR > 210 {
			t.Fatalf("window %d TrueHR %v out of range", i, w.TrueHR)
		}
	}
}

func TestDatasetCacheAndRelease(t *testing.T) {
	ds, _ := New(tinyConfig())
	r1, err := ds.Recording(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := ds.Recording(1)
	if r1 != r2 {
		t.Error("recording not cached")
	}
	ds.Release(1)
	r3, _ := ds.Recording(1)
	if r1 == r3 {
		t.Error("Release did not evict the cache")
	}
	// Regenerated recording must be byte-identical (determinism).
	for i := range r1.PPG {
		if r1.PPG[i] != r3.PPG[i] {
			t.Fatal("regenerated recording differs")
		}
	}
}

func TestCollectAndStream(t *testing.T) {
	ds, _ := New(tinyConfig())
	ws, err := ds.CollectWindows([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	err = ds.EachSubjectWindows([]int{0, 1}, func(s int, sw []Window) error {
		streamed += len(sw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(ws) {
		t.Errorf("streamed %d windows, collected %d", streamed, len(ws))
	}
}

func TestCrossValidationScheme(t *testing.T) {
	folds := CrossValidationSplits(15)
	if len(folds) != 15 {
		t.Fatalf("got %d iterations, want 15", len(folds))
	}
	testSeen := map[int]int{}
	for _, f := range folds {
		if len(f.Train) != 12 {
			t.Errorf("train size %d, want 12", len(f.Train))
		}
		if len(f.Validation) != 2 {
			t.Errorf("val size %d, want 2", len(f.Validation))
		}
		testSeen[f.Test]++
		// Disjointness.
		in := map[int]string{}
		for _, s := range f.Train {
			in[s] = "train"
		}
		for _, s := range f.Validation {
			if in[s] != "" {
				t.Errorf("subject %d in both train and val", s)
			}
			in[s] = "val"
		}
		if in[f.Test] != "" {
			t.Errorf("test subject %d also in %s", f.Test, in[f.Test])
		}
	}
	for s := 0; s < 15; s++ {
		if testSeen[s] != 1 {
			t.Errorf("subject %d is test in %d iterations, want 1", s, testSeen[s])
		}
	}
}

func TestSplitSubjects(t *testing.T) {
	ds, _ := New(tinyConfig()) // 4 subjects
	tr, pr, te, err := ds.SplitSubjects(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 || len(pr) != 1 || len(te) != 1 {
		t.Errorf("split sizes = %d/%d/%d, want 2/1/1", len(tr), len(pr), len(te))
	}
	if _, _, _, err := ds.SplitSubjects(3, 1); err == nil {
		t.Error("overfull split accepted")
	}
}

func TestWindowsDegenerate(t *testing.T) {
	if Windows(nil, 256, 64) != nil {
		t.Error("nil recording should give nil windows")
	}
	rec := &Recording{PPG: make([]float64, 100)}
	if got := Windows(rec, 256, 64); got != nil {
		t.Errorf("short recording should give no windows, got %d", len(got))
	}
}
