package dalia

import "fmt"

// Dataset is a lazy handle over the synthetic cohort: recordings are
// produced per subject on demand so that the full 37.5-hour dataset never
// needs to be resident at once.
type Dataset struct {
	cfg   Config
	cache map[int]*Recording
}

// New returns a dataset handle for the given configuration.
func New(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Dataset{cfg: cfg, cache: make(map[int]*Recording)}, nil
}

// Config returns the dataset configuration.
func (d *Dataset) Config() Config { return d.cfg }

// Subjects returns the cohort size.
func (d *Dataset) Subjects() int { return d.cfg.Subjects }

// Recording returns (generating and caching on first use) the recording of
// one subject.
func (d *Dataset) Recording(subject int) (*Recording, error) {
	if rec, ok := d.cache[subject]; ok {
		return rec, nil
	}
	rec, err := GenerateSubject(d.cfg, subject)
	if err != nil {
		return nil, err
	}
	d.cache[subject] = rec
	return rec, nil
}

// Release drops a cached recording so its memory can be reclaimed.
func (d *Dataset) Release(subject int) { delete(d.cache, subject) }

// SubjectWindows returns the analysis windows of one subject. The windows
// alias the cached recording; call Release only after the windows are no
// longer needed.
func (d *Dataset) SubjectWindows(subject int) ([]Window, error) {
	rec, err := d.Recording(subject)
	if err != nil {
		return nil, err
	}
	return Windows(rec, d.cfg.WindowSamples, d.cfg.StrideSamples), nil
}

// CollectWindows concatenates the windows of several subjects. Recordings
// of the listed subjects stay cached (the windows alias them).
func (d *Dataset) CollectWindows(subjects []int) ([]Window, error) {
	var out []Window
	for _, s := range subjects {
		ws, err := d.SubjectWindows(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ws...)
	}
	return out, nil
}

// EachSubjectWindows streams each subject's windows through fn, releasing
// the recording afterwards. Use this for evaluation passes over the full
// cohort where peak memory matters.
func (d *Dataset) EachSubjectWindows(subjects []int, fn func(subject int, ws []Window) error) error {
	for _, s := range subjects {
		ws, err := d.SubjectWindows(s)
		if err != nil {
			return err
		}
		if err := fn(s, ws); err != nil {
			return err
		}
		d.Release(s)
	}
	return nil
}

// Fold is one cross-validation iteration of the paper's scheme: 5 folds of
// 3 subjects; 4 folds train, two subjects of the held-out fold validate and
// the remaining one tests, rotating the test subject within the fold.
type Fold struct {
	Train      []int
	Validation []int
	Test       int
}

// CrossValidation enumerates all 15 (fold, rotation) iterations for a
// 15-subject cohort, or the analogous splits for smaller cohorts (cohorts
// not divisible by 3 put the remainder in the last fold).
func (d *Dataset) CrossValidation() []Fold {
	return CrossValidationSplits(d.cfg.Subjects)
}

// CrossValidationSplits builds the paper's 5×3 leave-subjects-out scheme
// for an arbitrary cohort size (≥3).
func CrossValidationSplits(subjects int) []Fold {
	const foldSize = 3
	var folds [][]int
	for start := 0; start < subjects; start += foldSize {
		end := start + foldSize
		if end > subjects {
			end = subjects
		}
		var f []int
		for s := start; s < end; s++ {
			f = append(f, s)
		}
		if len(f) > 0 {
			folds = append(folds, f)
		}
	}
	var out []Fold
	for i, held := range folds {
		var train []int
		for j, other := range folds {
			if j != i {
				train = append(train, other...)
			}
		}
		for _, test := range held {
			var val []int
			for _, s := range held {
				if s != test {
					val = append(val, s)
				}
			}
			out = append(out, Fold{Train: train, Validation: val, Test: test})
		}
	}
	return out
}

// SplitSubjects partitions the cohort into three disjoint subject sets with
// the given counts (train, profile, test) in subject order; it is the
// simpler split used by the CHRIS profiling pipeline when full CV is
// unnecessary.
func (d *Dataset) SplitSubjects(train, profile int) (trainS, profileS, testS []int, err error) {
	total := d.cfg.Subjects
	if train+profile >= total {
		return nil, nil, nil, fmt.Errorf("dalia: split %d+%d leaves no test subjects of %d", train, profile, total)
	}
	for s := 0; s < total; s++ {
		switch {
		case s < train:
			trainS = append(trainS, s)
		case s < train+profile:
			profileS = append(profileS, s)
		default:
			testS = append(testS, s)
		}
	}
	return trainS, profileS, testS, nil
}
