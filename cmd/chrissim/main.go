// Command chrissim runs whole-system scenarios on the CHRIS smartwatch
// simulator: battery-life projections under a chosen constraint, and BLE
// dropout traces with configuration re-selection.
//
// Usage:
//
//	chrissim [-quick] [-hours 24] [-mae 6.0] [-dropout 0] [-sensors] [-v]
//
// -dropout N cuts the link every N simulated seconds (down for N/4).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hw/ble"
	"repro/internal/hw/power"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chrissim: ")

	quick := flag.Bool("quick", true, "use the scaled-down pipeline (fast)")
	hours := flag.Float64("hours", 24, "simulated horizon in hours")
	maeBound := flag.Float64("mae", 0, "MAE constraint in BPM (0 = use energy bound)")
	energyBound := flag.Float64("energy", 0.3, "energy constraint in mJ when -mae is 0")
	dropout := flag.Float64("dropout", 0, "link dropout period in seconds (0 = always up)")
	sensors := flag.Bool("sensors", true, "charge the PPG/IMU front end")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	cfg := bench.DefaultSuiteConfig()
	if *quick {
		cfg = bench.QuickSuiteConfig()
	}
	if *verbose {
		cfg.Progress = func(format string, args ...interface{}) { log.Printf(format, args...) }
	}
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(suite.Profiles, suite.Classifier)
	if err != nil {
		log.Fatal(err)
	}

	constraint := core.EnergyConstraint(power.MilliJoules(*energyBound))
	if *maeBound > 0 {
		constraint = core.MAEConstraint(*maeBound)
	}

	var trace *ble.ConnectivityTrace
	if *dropout > 0 {
		var toggles []float64
		horizon := *hours * 3600
		for t := *dropout; t < horizon; t += *dropout {
			toggles = append(toggles, t, t+*dropout/4)
		}
		trace, err = ble.NewConnectivityTrace(true, toggles...)
		if err != nil {
			log.Fatal(err)
		}
	}

	bat := power.NewLiIon370()
	res, err := sim.Run(sim.Config{
		System:          suite.Sys,
		Engine:          engine,
		Constraint:      constraint,
		Trace:           trace,
		Windows:         suite.TestWindows,
		DurationSeconds: *hours * 3600,
		Battery:         bat,
		IncludeSensors:  *sensors,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %.1f h, constraint %v, dropout %v s\n", *hours, constraint, *dropout)
	fmt.Printf("active config:        %s\n", res.ActiveConfig)
	fmt.Printf("predictions:          %d (skipped %d, link-down windows %d, reselections %d)\n",
		res.Predictions, res.SkippedWindows, res.LinkDownWindows, res.Reselections)
	fmt.Printf("offloaded:            %d (%.1f%%)\n", res.Offloaded, pct(res.Offloaded, res.Predictions))
	fmt.Printf("simple-model runs:    %d (%.1f%%)\n", res.SimpleRuns, pct(res.SimpleRuns, res.Predictions))
	fmt.Printf("field MAE:            %.2f BPM\n", res.MAE)
	fmt.Printf("watch energy:         compute %v, radio %v, idle %v, sensors %v (total %v)\n",
		res.Watch.Compute, res.Watch.Radio, res.Watch.Idle, res.Watch.Sensors, res.Watch.Total())
	fmt.Printf("phone energy:         %v\n", res.PhoneEnergy)
	fmt.Printf("battery drain:        %v (SoC %.1f%%)\n", res.BatteryDrain, res.FinalSoC*100)
	if res.BatteryExhausted {
		fmt.Printf("battery exhausted after %.1f h\n", res.SimulatedSeconds/3600)
	} else if res.SimulatedSeconds > 0 {
		avg := power.Power(float64(res.BatteryDrain) / res.SimulatedSeconds)
		fmt.Printf("projected battery life: %.0f h at %v average\n",
			power.NewLiIon370().LifetimeHours(avg), avg)
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
