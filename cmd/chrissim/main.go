// Command chrissim runs whole-system scenarios on the CHRIS smartwatch
// simulator: battery-life projections under a chosen constraint, BLE
// dropout traces with configuration re-selection, and fault-injected
// runs over a lossy link with retry/timeout/backoff and graceful
// degradation.
//
// Usage:
//
//	chrissim [-quick] [-hours 24] [-mae 6.0] [-dropout 0]
//	         [-faults commute|gym|worstcase|none] [-seed 1] [-json]
//	         [-sensors] [-belief] [-gate 0] [-v]
//
// -dropout N cuts the link every N simulated seconds (down for N/4).
// -faults picks a chaos scenario (see internal/faults); -seed makes the
// injected packet loss replayable — the same seed reproduces the run
// byte for byte, which CI uses as a deterministic-replay gate via -json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/belief"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hw/ble"
	"repro/internal/hw/power"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chrissim: ")

	quick := flag.Bool("quick", true, "use the scaled-down pipeline (fast)")
	hours := flag.Float64("hours", 24, "simulated horizon in hours")
	maeBound := flag.Float64("mae", 0, "MAE constraint in BPM (0 = use energy bound)")
	energyBound := flag.Float64("energy", 0.3, "energy constraint in mJ when -mae is 0")
	dropout := flag.Float64("dropout", 0, "link dropout period in seconds (0 = always up)")
	faultsName := flag.String("faults", "", "fault scenario: "+listScenarios()+" (empty = fault-free)")
	seed := flag.Int64("seed", 1, "fault-injection seed (replayable, non-negative)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	sensors := flag.Bool("sensors", true, "charge the PPG/IMU front end")
	useBelief := flag.Bool("belief", false, "run the temporal belief filter (posterior-mean smoothing)")
	gateBPM := flag.Float64("gate", 0, "uncertainty-gate threshold in BPM (0 = gating off; implies -belief)")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	// Validate cheap inputs before the expensive suite build: a typo'd
	// scenario name must fail in milliseconds, not after minutes of
	// dataset generation and training.
	var injector *faults.Injector
	if *seed < 0 {
		log.Fatalf("-seed %d is negative; seeds are non-negative", *seed)
	}
	if *gateBPM < 0 {
		log.Fatalf("-gate %g is negative", *gateBPM)
	}
	if *hours <= 0 {
		log.Fatalf("-hours %g must be positive", *hours)
	}
	if *dropout < 0 {
		log.Fatalf("-dropout %g is negative", *dropout)
	}
	if *faultsName != "" {
		sc, ok := faults.ByName(*faultsName)
		if !ok {
			log.Fatalf("unknown fault scenario %q (have %s)", *faultsName, listScenarios())
		}
		var err error
		injector, err = faults.NewInjector(sc, uint64(*seed))
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := bench.DefaultSuiteConfig()
	if *quick {
		cfg = bench.QuickSuiteConfig()
	}
	if *verbose {
		cfg.Progress = func(format string, args ...interface{}) { log.Printf(format, args...) }
	}
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(suite.Profiles, suite.Classifier)
	if err != nil {
		log.Fatal(err)
	}

	constraint := core.EnergyConstraint(power.MilliJoules(*energyBound))
	if *maeBound > 0 {
		constraint = core.MAEConstraint(*maeBound)
	}

	var trace *ble.ConnectivityTrace
	if *dropout > 0 {
		var toggles []float64
		horizon := *hours * 3600
		for t := *dropout; t < horizon; t += *dropout {
			toggles = append(toggles, t, t+*dropout/4)
		}
		trace, err = ble.NewConnectivityTrace(true, toggles...)
		if err != nil {
			log.Fatal(err)
		}
	}

	var policy *belief.Policy
	if *useBelief || *gateBPM > 0 {
		if policy, err = suite.BeliefPolicy(); err != nil {
			log.Fatal(err)
		}
		policy.GateBPM = *gateBPM
	}

	bat := power.NewLiIon370()
	res, err := sim.Run(sim.Config{
		System:          suite.Sys,
		Engine:          engine,
		Constraint:      constraint,
		Trace:           trace,
		Windows:         suite.TestWindows,
		DurationSeconds: *hours * 3600,
		Battery:         bat,
		IncludeSensors:  *sensors,
		Faults:          injector,
		Belief:          policy,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("scenario: %.1f h, constraint %v, dropout %v s\n", *hours, constraint, *dropout)
	fmt.Printf("active config:        %s\n", res.ActiveConfig)
	fmt.Printf("predictions:          %d (skipped %d, link-down windows %d, reselections %d)\n",
		res.Predictions, res.SkippedWindows, res.LinkDownWindows, res.Reselections)
	fmt.Printf("offloaded:            %d (%.1f%%)\n", res.Offloaded, pct(res.Offloaded, res.Predictions))
	fmt.Printf("simple-model runs:    %d (%.1f%%)\n", res.SimpleRuns, pct(res.SimpleRuns, res.Predictions))
	fmt.Printf("field MAE:            %.2f BPM\n", res.MAE)
	fmt.Printf("watch energy:         compute %v, radio %v, idle %v, sensors %v (total %v)\n",
		res.Watch.Compute, res.Watch.Radio, res.Watch.Idle, res.Watch.Sensors, res.Watch.Total())
	fmt.Printf("phone energy:         %v\n", res.PhoneEnergy)
	fmt.Printf("battery drain:        %v (SoC %.1f%%)\n", res.BatteryDrain, res.FinalSoC*100)
	if injector != nil {
		fmt.Printf("fault scenario:       %s (seed %d)\n", res.FaultScenario, res.FaultSeed)
		fmt.Printf("  retries %d, timeouts %d, supervision drops %d, deadline misses %d\n",
			res.Retries, res.Timeouts, res.SupervisionDrops, res.DeadlineMisses)
		fmt.Printf("  fallback windows:   %d (%.1f%%)\n",
			res.FallbackWindows, pct(res.FallbackWindows, res.Predictions))
		fmt.Printf("  retransmits:        %d packets, %v radio overhead\n",
			res.RetransmitPackets, res.RetransmitEnergy)
		fmt.Printf("  brown-out drain:    %v\n", res.BrownOutEnergy)
		fmt.Printf("  MAE under faults:   %.2f BPM over %d windows\n", res.FaultMAE, res.FaultWindows)
	}
	if policy != nil {
		fmt.Printf("belief filter:        %d bins, 90%% CI width %.1f BPM, coverage %.1f%%\n",
			res.BeliefBins, res.BeliefWidthMean, res.BeliefCoverage*100)
		if policy.GateBPM > 0 {
			fmt.Printf("  gated offloads:     %d (%.1f%%) at gate %g BPM\n",
				res.GatedOffloads, pct(res.GatedOffloads, res.Predictions), policy.GateBPM)
		}
	}
	if res.BatteryExhausted {
		fmt.Printf("battery exhausted after %.1f h\n", res.SimulatedSeconds/3600)
	} else if res.SimulatedSeconds > 0 {
		avg := power.Power(float64(res.BatteryDrain) / res.SimulatedSeconds)
		fmt.Printf("projected battery life: %.0f h at %v average\n",
			power.NewLiIon370().LifetimeHours(avg), avg)
	}
}

func listScenarios() string {
	names := faults.Names()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
