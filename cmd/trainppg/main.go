// Command trainppg trains the TimePPG networks on the synthetic dataset,
// reports their topology and accuracy, and saves the weights in the
// format the experiment harness caches.
//
// Usage:
//
//	trainppg [-model small|big|both] [-scale 0.06] [-subjects 15] [-epochs 10] [-out dir] [-resume] [-describe]
//
// With -resume, a network whose weight file already exists under -out is
// loaded and re-evaluated instead of retrained, so an interrupted
// both-model run redoes only the missing network.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dalia"
	"repro/internal/models/tcn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainppg: ")

	model := flag.String("model", "both", "small, big or both")
	scale := flag.Float64("scale", 0.06, "dataset duration scale")
	subjects := flag.Int("subjects", 15, "cohort size")
	trainN := flag.Int("train", 10, "training subjects (rest validate)")
	epochs := flag.Int("epochs", 10, "training epochs")
	stride := flag.Int("stride", 2, "training window subsampling")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("out", "", "output directory for weights (empty = don't save)")
	resume := flag.Bool("resume", false, "skip models whose weight file already exists under -out")
	describe := flag.Bool("describe", false, "print topology summaries and exit")
	flag.Parse()

	if *describe {
		fmt.Print(tcn.NewTimePPGSmall().Describe())
		fmt.Print(tcn.NewTimePPGBig().Describe())
		return
	}

	cfg := dalia.DefaultConfig()
	cfg.Seed = *seed
	cfg.Subjects = *subjects
	cfg.DurationScale = *scale
	ds, err := dalia.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var trainW, valW []dalia.Window
	for s := 0; s < *subjects; s++ {
		ws, err := ds.SubjectWindows(s)
		if err != nil {
			log.Fatal(err)
		}
		if s < *trainN {
			for i := 0; i < len(ws); i += *stride {
				trainW = append(trainW, ws[i])
			}
		} else {
			valW = append(valW, ws...)
		}
	}
	trainS := tcn.WindowsToSamples(trainW)
	valS := tcn.WindowsToSamples(valW)
	log.Printf("train %d windows, validate %d", len(trainS), len(valS))

	run := func(name string, build func() *tcn.Network) {
		if *resume && *out != "" {
			path := filepath.Join(*out, name+".tcnw")
			if net, err := tcn.Load(path); err == nil {
				log.Printf("%s: resumed from %s (train MAE %.2f BPM, val MAE %.2f BPM)",
					name, path, tcn.Evaluate(net, trainS), tcn.Evaluate(net, valS))
				return
			}
		}
		net := build()
		net.InitWeights(*seed + 7)
		tc := tcn.DefaultTrainConfig()
		tc.Epochs = *epochs
		tc.Seed = *seed + 13
		tc.Progress = func(e int, l float64) { log.Printf("%s epoch %d loss %.4f", name, e, l) }
		if _, err := tcn.Fit(net, trainS, tc); err != nil {
			log.Fatal(err)
		}
		// Evaluate runs the GEMM-backed batch forward path internally
		// (bitwise identical to per-sample inference).
		log.Printf("%s: train MAE %.2f BPM, val MAE %.2f BPM",
			name, tcn.Evaluate(net, trainS), tcn.Evaluate(net, valS))
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*out, name+".tcnw")
			if err := tcn.Save(net, path); err != nil {
				log.Fatal(err)
			}
			log.Printf("saved %s", path)
		}
	}
	if *model == "small" || *model == "both" {
		run(tcn.SmallName, tcn.NewTimePPGSmall)
	}
	if *model == "big" || *model == "both" {
		run(tcn.BigName, tcn.NewTimePPGBig)
	}
}
