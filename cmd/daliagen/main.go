// Command daliagen inspects the synthetic PPGDalia-like dataset: it
// generates one or more subjects and prints per-activity statistics
// (window counts, accelerometer energy, heart-rate ranges), or exports a
// subject's raw signals as CSV for external plotting.
//
// Usage:
//
//	daliagen [-subject 0] [-scale 0.1] [-seed 1] [-csv out.csv] [-stats]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/dalia"
	"repro/internal/eval"
	"repro/internal/models/at"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daliagen: ")

	subject := flag.Int("subject", 0, "subject id to generate")
	scale := flag.Float64("scale", 0.1, "protocol duration scale")
	seed := flag.Int64("seed", 1, "dataset seed")
	csvPath := flag.String("csv", "", "export raw signals to CSV")
	flag.Parse()

	cfg := dalia.DefaultConfig()
	cfg.Seed = *seed
	cfg.DurationScale = *scale
	if *subject >= cfg.Subjects {
		cfg.Subjects = *subject + 1
	}
	rec, err := dalia.GenerateSubject(cfg, *subject)
	if err != nil {
		log.Fatal(err)
	}
	ws := dalia.Windows(rec, cfg.WindowSamples, cfg.StrideSamples)
	fmt.Printf("subject %d: %d samples (%.1f min), %d windows\n",
		rec.Subject, rec.Samples(), float64(rec.Samples())/cfg.SampleRate/60, len(ws))

	type agg struct {
		n              int
		energy, hr, er float64
	}
	stats := map[dalia.Activity]*agg{}
	atEst := at.New()
	for i := range ws {
		w := &ws[i]
		a := stats[w.Activity]
		if a == nil {
			a = &agg{}
			stats[w.Activity] = a
		}
		a.n++
		a.energy += w.AccelEnergy()
		a.hr += w.TrueHR
		a.er += abs(atEst.EstimateHR(w) - w.TrueHR)
	}
	t := eval.NewTable("Per-activity statistics",
		"Activity", "Diff.", "Windows", "Accel energy", "Mean HR", "AT MAE")
	for _, act := range dalia.Activities() {
		a := stats[act]
		if a == nil {
			continue
		}
		n := float64(a.n)
		t.AddRow(act.String(), fmt.Sprintf("%d", act.DifficultyID()),
			fmt.Sprintf("%d", a.n),
			fmt.Sprintf("%.4f", a.energy/n),
			fmt.Sprintf("%.1f", a.hr/n),
			fmt.Sprintf("%.2f", a.er/n))
	}
	fmt.Print(t.String())

	if *csvPath != "" {
		if err := exportCSV(*csvPath, rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func exportCSV(path string, rec *dalia.Recording) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"t", "ppg", "ax", "ay", "az", "hr", "activity"}); err != nil {
		return err
	}
	for i := 0; i < rec.Samples(); i++ {
		row := []string{
			strconv.FormatFloat(float64(i)/rec.Rate, 'f', 4, 64),
			strconv.FormatFloat(rec.PPG[i], 'f', 5, 64),
			strconv.FormatFloat(rec.AccelX[i], 'f', 5, 64),
			strconv.FormatFloat(rec.AccelY[i], 'f', 5, 64),
			strconv.FormatFloat(rec.AccelZ[i], 'f', 5, 64),
			strconv.FormatFloat(rec.TrueHR[i], 'f', 2, 64),
			rec.Label[i].String(),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
