// Command chrisfleet simulates a synthetic fleet of CHRIS users: each
// user gets sampled physiology, their own activity recording, a cohort
// scenario/constraint drawn from the mix, and a full sim.Run over the
// requested horizon; results stream into bounded-memory population
// aggregates (distributions, per-cohort breakdowns, the fleet-wide
// energy/accuracy Pareto front).
//
// Usage:
//
//	chrisfleet [-users 1000] [-days 1] [-mix spec] [-seed 1]
//	           [-workers 0] [-checkpoint file] [-resume] [-snapdays 0]
//	           [-belief] [-gate 0] [-json] [-v]
//
// -mix is a comma list of scenario:constraint:weight cohorts, e.g.
// "none:mae4:0.5,commute:mj1:0.5" (mae<bpm> or mj<millijoules>); empty
// uses the built-in default mix. The summary is a pure function of
// (-users -days -mix -seed): the same seed reproduces it byte for byte
// across runs and worker counts, which CI uses as a replay gate via
// -json. -checkpoint enables crash-safe progress; -resume continues an
// interrupted run from its checkpoint and yields the same bytes as an
// uninterrupted one. -snapdays N additionally snapshots each in-flight
// user's mid-day state every N simulated days, so a resume continues
// interrupted users from their last segment instead of re-simulating
// their whole horizon.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chrisfleet: ")

	users := flag.Int("users", 1000, "fleet size")
	days := flag.Float64("days", 1, "simulated horizon per user in days")
	mixSpec := flag.String("mix", "", "cohort mix as scenario:constraint:weight,... (empty = default)")
	seed := flag.Uint64("seed", 1, "fleet seed (replayable)")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for crash-safe progress (empty = none)")
	resume := flag.Bool("resume", false, "resume an interrupted run from -checkpoint")
	snapDays := flag.Float64("snapdays", 0, "mid-day sidecar snapshot cadence in simulated days (0 = off; requires -checkpoint)")
	useBelief := flag.Bool("belief", false, "run the per-user temporal belief filter (posterior-mean smoothing)")
	gateBPM := flag.Float64("gate", 0, "uncertainty-gate threshold in BPM (0 = gating off; implies -belief)")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON instead of text")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	cfg := fleet.DefaultConfig()
	cfg.Users = *users
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Checkpoint = *checkpoint
	cfg.Resume = *resume
	cfg.SnapshotDays = *snapDays
	if *mixSpec != "" {
		mix, err := fleet.ParseMix(*mixSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Mix = mix
	}
	if *useBelief || *gateBPM > 0 {
		cfg.Belief = fleet.BeliefConfig{Enabled: true, Smooth: true, GateBPM: *gateBPM}
	}
	// Validate everything cheap before the forest trains: a typo'd mix or
	// a resume without a checkpoint must fail in milliseconds.
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if *verbose {
		every := *users / 20
		if every < 1 {
			every = 1
		}
		cfg.OnUser = func(r *fleet.UserResult) {
			if (r.ID+1)%every == 0 || r.ID+1 == *users {
				log.Printf("user %d/%d done", r.ID+1, *users)
			}
		}
	}

	sum, err := fleet.Run(cfg)
	if errors.Is(err, fleet.ErrInterrupted) {
		log.Fatal("interrupted; rerun with -resume to continue")
	}
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
		return
	}
	printSummary(sum)
}

func printSummary(s *fleet.Summary) {
	fmt.Printf("fleet: %d users × %g days (seed %d), %d windows\n", s.Users, s.Days, s.Seed, s.Windows)
	fmt.Printf("mix:   %s\n", s.Mix)

	fmt.Println("\npopulation distributions:")
	for _, name := range []string{"mae", "energy_day_mj", "life_h", "offload_frac", "soc_final"} {
		d, ok := s.Overall[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-14s mean %8.2f   p05 %8.2f   p50 %8.2f   p95 %8.2f\n",
			name, d.Mean, d.P05, d.P50, d.P95)
	}

	fmt.Println("\ncohorts:")
	for _, c := range s.Cohorts {
		mae := c.Metrics["mae"]
		life := c.Metrics["life_h"]
		relaxed := c.Metrics["relaxed"]
		fmt.Printf("  %-18s %6d users   mae p50 %6.2f BPM   life p05 %7.1f h   relaxed %4.1f%%\n",
			c.Name, c.Users, mae.P50, life.P05, 100*relaxed.Mean)
	}

	fmt.Println("\nenergy/accuracy Pareto (cohort means):")
	pts := append([]fleet.ParetoPoint(nil), s.Pareto...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].EnergyDayMJ < pts[j].EnergyDayMJ })
	for _, p := range pts {
		mark := " "
		if p.OnFront {
			mark = "*"
		}
		fmt.Printf("  %s %-18s %10.1f mJ/day   %6.2f BPM   life p05 %7.1f h\n",
			mark, p.Cohort, p.EnergyDayMJ, p.MAE, p.LifeP05H)
	}
	fmt.Println("  (* = on the non-dominated front)")
}
