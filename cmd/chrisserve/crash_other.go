//go:build !unix

package main

import "os"

// crashSelf approximates a hard crash on platforms without SIGKILL
// semantics: exit immediately with the conventional 128+9 code, skipping
// all deferred cleanup.
func crashSelf() { os.Exit(137) }
