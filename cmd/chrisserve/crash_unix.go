//go:build unix

package main

import (
	"os"
	"syscall"
)

// crashSelf simulates the hardest crash the host can deliver — SIGKILL,
// which cannot be caught, so no deferred cleanup or flush runs. The CI
// crash-recovery gate uses it to prove a -resume run continues
// byte-identically from the last durable checkpoint.
func crashSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// Unreachable once the signal is delivered; the exit code below
	// mirrors a SIGKILL death in case delivery ever fails.
	os.Exit(137)
}
