// Command chrisserve runs the streaming multi-session inference engine
// (internal/serve): many simulated users submit PPG windows
// concurrently, the engine coalesces them into wide GEMM batches, and
// per-session robustness — backpressure, shedding, deadline discard,
// panic supervision — is exercised end to end.
//
// Usage:
//
//	chrisserve [-quick] [-sessions 32] [-seconds 10] [-rate 100]
//	           [-faults commute|gym|worstcase|none] [-seed 1]
//	           [-mae 6.0] [-virtual] [-cycles 64] [-belief] [-gate 0]
//	           [-checkpoint file] [-resume] [-crashafter 0]
//	           [-json] [-v]
//
// Two clocks, one engine:
//
//   - wall mode (default) free-runs the pump at real time, accelerated
//     by -rate (a rate of 100 submits the 2-second prediction windows
//     every 20 ms), and reports p50/p99 window latency and
//     sessions-per-core at steady state;
//   - -virtual runs the identical machinery in deterministic lockstep:
//     the same -sessions/-cycles/-faults/-seed always produce
//     byte-identical -json output, which CI uses as a replay gate.
//
// Durability: -checkpoint snapshots the complete engine state — after
// every quiesced cycle in virtual mode, on a wall-clock cadence in wall
// mode — with the atomic partial-file+rename discipline. -resume
// restores the snapshot before running; a virtual run killed mid-way
// (even with SIGKILL: -crashafter N self-kills after checkpointing
// cycle N, which is the CI crash-recovery gate) and resumed under the
// same flags emits -json output byte-identical to a run that never
// crashed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dalia"
	"repro/internal/faults"
	"repro/internal/hw/power"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chrisserve: ")

	quick := flag.Bool("quick", true, "use the scaled-down pipeline (fast)")
	nSessions := flag.Int("sessions", 32, "concurrent user sessions")
	seconds := flag.Float64("seconds", 10, "wall-mode run duration")
	rate := flag.Float64("rate", 100, "wall-mode speedup over the 2 s window period")
	faultsName := flag.String("faults", "", "fault scenario: "+listScenarios()+" (empty = fault-free)")
	seed := flag.Int64("seed", 1, "fault-injection seed (replayable, non-negative)")
	maeBound := flag.Float64("mae", 0, "MAE constraint in BPM (0 = use energy bound)")
	energyBound := flag.Float64("energy", 0.3, "energy constraint in mJ when -mae is 0")
	virtual := flag.Bool("virtual", false, "deterministic lockstep mode (virtual clock)")
	cycles := flag.Int("cycles", 64, "lockstep cycles in -virtual mode")
	useBelief := flag.Bool("belief", false, "run the per-session temporal belief filter")
	gateBPM := flag.Float64("gate", 0, "uncertainty-gate threshold in BPM (0 = gating off; implies -belief)")
	checkpoint := flag.String("checkpoint", "", "engine snapshot file (virtual: every cycle, wall: every second)")
	resume := flag.Bool("resume", false, "restore engine state from -checkpoint before running")
	crashAfter := flag.Int("crashafter", 0, "virtual mode: SIGKILL self after checkpointing cycle N (CI crash gate)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	// Validate cheap inputs — including every flag combination — before
	// the expensive suite build: a bad -gate or an orphan -resume must
	// fail in milliseconds, not after minutes of dataset generation.
	var scenario *faults.Scenario
	if *faultsName != "" {
		sc, ok := faults.ByName(*faultsName)
		if !ok {
			log.Fatalf("unknown fault scenario %q (have %s)", *faultsName, listScenarios())
		}
		scenario = &sc
	}
	if *seed < 0 {
		log.Fatalf("-seed %d is negative; seeds are non-negative", *seed)
	}
	if *nSessions < 1 {
		log.Fatalf("-sessions %d < 1", *nSessions)
	}
	if *rate <= 0 {
		log.Fatalf("-rate %g must be positive", *rate)
	}
	if *seconds <= 0 {
		log.Fatalf("-seconds %g must be positive", *seconds)
	}
	if *cycles < 1 {
		log.Fatalf("-cycles %d < 1", *cycles)
	}
	if *gateBPM < 0 {
		log.Fatalf("-gate %g is negative", *gateBPM)
	}
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	switch {
	case *crashAfter < 0:
		log.Fatalf("-crashafter %d is negative", *crashAfter)
	case *crashAfter > 0 && *checkpoint == "":
		log.Fatal("-crashafter requires -checkpoint")
	case *crashAfter > 0 && !*virtual:
		log.Fatal("-crashafter requires -virtual (wall mode checkpoints on its own cadence)")
	case *crashAfter >= *cycles && *crashAfter > 0:
		log.Fatalf("-crashafter %d must be below -cycles %d", *crashAfter, *cycles)
	}

	cfg := bench.DefaultSuiteConfig()
	if *quick {
		cfg = bench.QuickSuiteConfig()
	}
	if *verbose {
		cfg.Progress = func(format string, args ...interface{}) { log.Printf(format, args...) }
	}
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(suite.Profiles, suite.Classifier)
	if err != nil {
		log.Fatal(err)
	}

	constraint := core.EnergyConstraint(power.MilliJoules(*energyBound))
	if *maeBound > 0 {
		constraint = core.MAEConstraint(*maeBound)
	}
	sCfg := serve.Config{
		Engine:     engine,
		System:     suite.Sys,
		Constraint: constraint,
		Faults:     scenario,
		FaultSeed:  uint64(*seed),
	}
	if *useBelief || *gateBPM > 0 {
		pol, err := suite.BeliefPolicy()
		if err != nil {
			log.Fatal(err)
		}
		pol.GateBPM = *gateBPM
		sCfg.Belief = pol
	}

	var rep report
	if *virtual {
		rep, err = runVirtual(sCfg, suite.TestWindows, *nSessions, *cycles, *checkpoint, *resume, *crashAfter)
	} else {
		rep, err = runWall(sCfg, suite.TestWindows, *nSessions, *seconds, *rate, *checkpoint, *resume, *verbose)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	rep.print()
}

// sessionReport is one session's slice of the run output. Results are
// included only in virtual mode, where they are the replay-gate payload.
type sessionReport struct {
	ID      string               `json:"id"`
	Stats   serve.SessionStats   `json:"stats"`
	Results []serve.WindowResult `json:"results,omitempty"`
}

// report is the run summary, stable for -json consumers.
type report struct {
	Mode          string          `json:"mode"`
	Sessions      int             `json:"sessions"`
	Scenario      string          `json:"scenario"`
	Seed          uint64          `json:"seed"`
	Windows       uint64          `json:"windows"`
	Discarded     uint64          `json:"discarded"`
	P50LatencyMS  float64         `json:"p50_latency_ms"`
	P99LatencyMS  float64         `json:"p99_latency_ms"`
	WindowsPerSec float64         `json:"windows_per_sec,omitempty"`
	SessionsCore  float64         `json:"sessions_per_core,omitempty"`
	PerSession    []sessionReport `json:"per_session"`
}

func (r report) print() {
	fmt.Printf("mode: %s, %d sessions, scenario %q (seed %d)\n", r.Mode, r.Sessions, r.Scenario, r.Seed)
	fmt.Printf("windows finished:     %d (%d discarded)\n", r.Windows, r.Discarded)
	fmt.Printf("window latency:       p50 %.3f ms, p99 %.3f ms\n", r.P50LatencyMS, r.P99LatencyMS)
	if r.WindowsPerSec > 0 {
		fmt.Printf("throughput:           %.0f windows/s, %.1f sessions/core\n", r.WindowsPerSec, r.SessionsCore)
	}
	var tot serve.SessionStats
	for _, s := range r.PerSession {
		tot.FullRuns += s.Stats.FullRuns
		tot.SimpleRuns += s.Stats.SimpleRuns
		tot.FallbackWindows += s.Stats.FallbackWindows
		tot.ShedWindows += s.Stats.ShedWindows
		tot.Expired += s.Stats.Expired
		tot.Late += s.Stats.Late
		tot.Dropped += s.Stats.Dropped
		tot.Retries += s.Stats.Retries
		tot.SupervisionDrops += s.Stats.SupervisionDrops
		tot.GatedWindows += s.Stats.GatedWindows
	}
	fmt.Printf("outcomes:             full %d, simple %d, fallback %d, shed %d, expired %d, late %d, dropped %d\n",
		tot.FullRuns, tot.SimpleRuns, tot.FallbackWindows, tot.ShedWindows, tot.Expired, tot.Late, tot.Dropped)
	fmt.Printf("offload faults:       %d retries, %d supervision drops\n", tot.Retries, tot.SupervisionDrops)
	if tot.GatedWindows > 0 {
		fmt.Printf("belief-gated windows: %d\n", tot.GatedWindows)
	}
}

// runVirtual is the lockstep replay: one window per session per cycle,
// deterministic byte-for-byte under equal flags. With a checkpoint path
// the engine snapshots after every quiesced cycle; with resume it
// restores the snapshot first and continues from the checkpointed cycle,
// byte-identical to a run that never stopped. crashAfter > 0 SIGKILLs
// the process right after cycle crashAfter's checkpoint lands — the
// hardest crash the host can deliver — for the CI recovery gate.
func runVirtual(cfg serve.Config, ws []dalia.Window, nSessions, cycles int, checkpoint string, resume bool, crashAfter int) (report, error) {
	vc := serve.NewVirtualClock()
	cfg.Clock = vc
	e, err := serve.Open(cfg)
	if err != nil {
		return report{}, err
	}
	start := 0
	if resume {
		if err := e.RestoreFile(checkpoint); err != nil {
			return report{}, fmt.Errorf("resume: %w", err)
		}
		// The restored clock sits at the checkpoint instant; the next
		// cycle index is its quotient by the window period.
		start = int(vc.Now()/cfg.System.PeriodSeconds + 0.5)
	}
	sessions := make([]*serve.Session, nSessions)
	for i := range sessions {
		id := fmt.Sprintf("u%04d", i)
		if s := e.Session(id); s != nil {
			sessions[i] = s
			continue
		}
		s, err := e.NewSession(id)
		if err != nil {
			return report{}, err
		}
		sessions[i] = s
	}
	for c := start; c < cycles; c++ {
		for i, s := range sessions {
			w := &ws[(i*cycles+c)%len(ws)]
			s.Submit(w, vc.Now())
		}
		e.Tick()
		vc.Advance(cfg.System.PeriodSeconds)
		if checkpoint != "" {
			if err := e.Checkpoint(checkpoint); err != nil {
				return report{}, err
			}
			if crashAfter > 0 && c+1 == crashAfter {
				crashSelf()
			}
		}
	}
	if err := e.Close(); err != nil {
		return report{}, err
	}
	rep := report{Mode: "virtual", Sessions: nSessions, Seed: cfg.FaultSeed, Scenario: scenarioName(cfg)}
	var lat []float64
	for _, s := range sessions {
		res := s.Drain()
		st := s.Stats()
		rep.Windows += st.Finished()
		for _, r := range res {
			if r.Outcome.Discarded() {
				rep.Discarded++
			}
			lat = append(lat, r.Latency)
		}
		rep.PerSession = append(rep.PerSession, sessionReport{ID: s.ID(), Stats: st, Results: res})
	}
	rep.P50LatencyMS = percentile(lat, 0.50) * 1e3
	rep.P99LatencyMS = percentile(lat, 0.99) * 1e3
	return rep, nil
}

// runWall free-runs the engine against real time with per-session
// submitter goroutines at the accelerated window period. A checkpoint
// path turns on the engine's own auto-checkpoint cadence; resume
// restores the previous snapshot first (a missing file is a first boot,
// not an error).
func runWall(cfg serve.Config, ws []dalia.Window, nSessions int, seconds, rate float64, checkpoint string, resume bool, verbose bool) (report, error) {
	cfg.FlushSeconds = cfg.System.PeriodSeconds / rate / 4
	cfg.CheckpointPath = checkpoint
	// Read before Open so the pump's first auto-checkpoint of the empty
	// engine cannot clobber the snapshot we are about to restore.
	var resumeData []byte
	if resume {
		var err error
		if resumeData, err = os.ReadFile(checkpoint); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return report{}, fmt.Errorf("resume: %w", err)
			}
			resumeData = nil
		}
	}
	e, err := serve.Open(cfg)
	if err != nil {
		return report{}, err
	}
	if resumeData != nil {
		if err := e.Restore(resumeData); err != nil {
			return report{}, fmt.Errorf("resume: %w", err)
		}
	}
	sessions := make([]*serve.Session, nSessions)
	for i := range sessions {
		id := fmt.Sprintf("u%04d", i)
		if s := e.Session(id); s != nil {
			sessions[i] = s
			continue
		}
		s, err := e.NewSession(id)
		if err != nil {
			return report{}, err
		}
		sessions[i] = s
	}
	period := time.Duration(cfg.System.PeriodSeconds / rate * float64(time.Second))
	stop := make(chan struct{})
	time.AfterFunc(time.Duration(seconds*float64(time.Second)), func() { close(stop) })
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *serve.Session) {
			defer wg.Done()
			t := time.NewTicker(period)
			defer t.Stop()
			k := 0
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				s.SubmitNow(&ws[(i+k*nSessions)%len(ws)])
				k++
			}
		}(i, s)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err := e.Close(); err != nil {
		return report{}, err
	}
	rep := report{Mode: "wall", Sessions: nSessions, Seed: cfg.FaultSeed, Scenario: scenarioName(cfg)}
	var lat []float64
	for _, s := range sessions {
		res := s.Drain()
		st := s.Stats()
		rep.Windows += st.Finished()
		for _, r := range res {
			if r.Outcome.Discarded() {
				rep.Discarded++
			}
			lat = append(lat, r.Latency)
		}
		// Results are dropped in wall mode: timing-dependent, not replayable.
		rep.PerSession = append(rep.PerSession, sessionReport{ID: s.ID(), Stats: st})
	}
	rep.P50LatencyMS = percentile(lat, 0.50) * 1e3
	rep.P99LatencyMS = percentile(lat, 0.99) * 1e3
	if elapsed > 0 {
		rep.WindowsPerSec = float64(rep.Windows) / elapsed
		// sessions/core at real-time cadence: how many 2 s streams one
		// core sustains, extrapolated from the accelerated run.
		perCoreThroughput := rep.WindowsPerSec / float64(runtime.GOMAXPROCS(0))
		rep.SessionsCore = perCoreThroughput * cfg.System.PeriodSeconds
	}
	if verbose {
		log.Printf("ran %.2f s at rate %.0f: %d windows", elapsed, rate, rep.Windows)
	}
	return rep, nil
}

func scenarioName(cfg serve.Config) string {
	if cfg.Faults == nil {
		return "none"
	}
	return cfg.Faults.Name
}

// percentile returns the q-quantile (0..1) of xs by nearest-rank.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func listScenarios() string {
	names := faults.Names()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}
