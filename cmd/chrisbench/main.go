// Command chrisbench regenerates every table and figure of the paper's
// evaluation (Tables I-III, Figures 3-5, the BLE-down and RF-accuracy
// claims, and the repository's ablations) from the synthetic pipeline.
//
// The first run trains the TimePPG networks and caches weights and
// inference records under -cache; later runs are fast.
//
// Usage:
//
//	chrisbench [-quick] [-scale 0.06] [-subjects 15] [-epochs 10] [-cache dir] [-resume] [-only T1,F4] [-json BENCH_1.json] [-v]
//
// A run killed while building inference records leaves a checkpointed
// partial cache behind; -resume continues it from the last completed
// chunk instead of re-running inference from window zero (the finished
// cache is byte-identical either way).
//
// With -json, the run additionally micro-benchmarks the hot-path kernels
// (optimized and seed-reference forms), measures record-building scaling,
// and writes a machine-readable BENCH_*.json perf-trajectory file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chrisbench: ")

	quick := flag.Bool("quick", false, "use the scaled-down test pipeline")
	scale := flag.Float64("scale", 0, "dataset duration scale (0 = config default)")
	subjects := flag.Int("subjects", 0, "cohort size (0 = config default)")
	epochs := flag.Int("epochs", 0, "TCN training epochs (0 = config default)")
	cache := flag.String("cache", "", "cache directory (empty = config default)")
	resume := flag.Bool("resume", false, "continue an interrupted record build from its checkpoint")
	only := flag.String("only", "", "comma-separated artifact IDs to print (default all)")
	jsonOut := flag.String("json", "", "write a machine-readable BENCH_*.json perf report to this path")
	verbose := flag.Bool("v", false, "progress logging")
	flag.Parse()

	cfg := bench.DefaultSuiteConfig()
	if *quick {
		cfg = bench.QuickSuiteConfig()
	}
	if *scale > 0 {
		cfg.DataScale = *scale
	}
	if *subjects > 0 {
		cfg.Subjects = *subjects
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	if *cache != "" {
		cfg.CacheDir = *cache
	}
	cfg.Resume = *resume
	if *verbose {
		cfg.Progress = func(format string, args ...interface{}) { log.Printf(format, args...) }
	}

	suite, err := bench.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var want map[string]bool
	if *only != "" {
		want = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, a := range bench.Artifacts(suite) {
		if want != nil && !want[a.ID] {
			continue
		}
		fmt.Fprintf(os.Stdout, "==== %s (%s) ====\n%s\n", a.Title, a.ID, a.Text)
	}

	if *jsonOut != "" {
		log.Printf("running kernel benchmarks for %s", *jsonOut)
		rep, err := bench.BuildBenchReport(suite)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteBenchReport(*jsonOut, rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
	}
}
