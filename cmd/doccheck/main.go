// Command doccheck enforces the repository's documentation floor: every
// package under the given roots (default ./internal) must carry a package
// comment in at least one of its non-test files. CI runs it next to the
// godoc examples, so a new package cannot land undocumented.
//
// Usage:
//
//	doccheck [roots ...]
//
// Exits non-zero listing every package directory without a package
// comment.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal"}
	}

	// Collect non-test Go files per directory (deduplicated, so
	// overlapping roots are harmless).
	pkgFiles := map[string][]string{}
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if path = filepath.Clean(path); seen[path] {
				return nil
			}
			seen[path] = true
			dir := filepath.Dir(path)
			pkgFiles[dir] = append(pkgFiles[dir], path)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}

	var missing []string
	for dir, files := range pkgFiles {
		documented := false
		for _, f := range files {
			if hasPackageDoc(f) {
				documented = true
				break
			}
		}
		if !documented {
			missing = append(missing, dir)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(os.Stderr, "doccheck: packages missing a package comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages documented\n", len(pkgFiles))
}

// hasPackageDoc reports whether the file attaches a doc comment to its
// package clause.
func hasPackageDoc(path string) bool {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil || f.Doc == nil {
		return false
	}
	return strings.TrimSpace(f.Doc.Text()) != ""
}
